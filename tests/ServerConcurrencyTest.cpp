//===- tests/ServerConcurrencyTest.cpp - N-client differential test -------===//
//
// The multi-tenant guarantee, tested differentially: N concurrent clients
// each stream a seeded workload to the server AND through a private local
// query module (server/Workload.h). Reduction is deterministic, so the
// local module is built over the same reduced description the server
// serves from its shared pattern arena — every per-event result, the
// final WorkCounters, and a full occupancy probe grid must match
// bit-identically at 1, 4, and 16 clients. Any cross-session bleed
// through the shared arena, a lock dropped around session state, or a
// reordering in the worker pool shows up as a mismatch.
//
// Runs under the tsan preset (label "server") to catch data races the
// differential comparison alone cannot see.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/QueryModule.h"
#include "reduce/Reduction.h"
#include "reduce/ReductionCache.h"
#include "server/Client.h"
#include "server/Server.h"
#include "server/Workload.h"

#include "gtest/gtest.h"

#include <atomic>
#include <unistd.h>
#include <thread>
#include <vector>

using namespace rmd;
using namespace rmd::server;
using namespace rmd::wire;

namespace {

std::string uniqueSocket(const char *Tag) {
  static std::atomic<int> Counter{0};
  return std::string("@rmd-test-") + Tag + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(Counter.fetch_add(1));
}

/// The client-side mirror of the server's load path: same expansion, same
/// reduction (deterministic), so local modules see the same description.
MachineDescription reducedFor(const MachineModel &Model) {
  ExpandedMachine EM = expandAlternatives(Model.MD);
  SafeReduction Safe = reduceMachineOrFallback(EM.Flat);
  return std::move(Safe.Result.Reduced);
}

struct ClientOutcome {
  bool Ok = false;
  std::string What;
};

/// One tenant: streams Batches batches of BatchLen seeded events, checks
/// every result byte against the local mirror, then the counters, then an
/// occupancy probe over every (op, cycle) in the window.
void runTenant(const std::string &Socket, const std::string &MachineName,
               const MachineDescription &Reduced, const QueryConfig &Config,
               uint64_t Seed, size_t Batches, size_t BatchLen,
               ClientOutcome &Out) {
  auto Fail = [&Out](std::string What) {
    Out.Ok = false;
    Out.What = std::move(What);
  };

  Expected<std::unique_ptr<RmdClient>> Client =
      RmdClient::connect(Socket, /*RecvTimeoutMs=*/300000);
  if (!Client)
    return Fail("connect: " + Client.status().render());
  RmdClient &C = *Client.value();

  Expected<LoadMachineReply> M = C.loadMachine(MachineName);
  if (!M)
    return Fail("load: " + M.status().render());

  OpenSessionRequest OpenReq;
  OpenReq.MachineId = M.value().MachineId;
  OpenReq.Modulo = Config.Mode == QueryConfig::Modulo ? 1 : 0;
  OpenReq.ModuloII = Config.ModuloII;
  OpenReq.MinCycle = Config.MinCycle;
  OpenReq.Tenant = "tenant-" + std::to_string(Seed);
  Expected<OpenSessionReply> Open = C.openSession(OpenReq);
  if (!Open)
    return Fail("open: " + Open.status().render());
  uint32_t SessionId = Open.value().SessionId;

  WorkloadGenerator Gen(Reduced, Config, Seed);
  std::vector<BatchEvent> Events;
  std::vector<uint8_t> Want;
  for (size_t B = 0; B < Batches; ++B) {
    Events.clear();
    Want.clear();
    Gen.nextBatch(BatchLen, Events, Want);
    BatchRequest Req;
    Req.SessionId = SessionId;
    Req.Events = Events;
    Expected<BatchReply> Reply = C.runBatch(Req);
    if (!Reply)
      return Fail("batch " + std::to_string(B) + ": " +
                  Reply.status().render());
    if (Reply.value().Results != Want)
      return Fail("batch " + std::to_string(B) +
                  ": result bytes diverge from the local module");
  }

  // Counters: the server session must have done exactly the same work.
  Expected<StatsReply> Stats = C.sessionStats(SessionId);
  if (!Stats)
    return Fail("stats: " + Stats.status().render());
  WorkCounters Local = Gen.module().counters();
  const WorkCounters &Remote = Stats.value().Session.Counters;
  if (Remote.CheckCalls != Local.CheckCalls ||
      Remote.CheckUnits != Local.CheckUnits ||
      Remote.AssignCalls != Local.AssignCalls ||
      Remote.AssignUnits != Local.AssignUnits ||
      Remote.FreeCalls != Local.FreeCalls ||
      Remote.FreeUnits != Local.FreeUnits ||
      Remote.AssignFreeCalls != Local.AssignFreeCalls ||
      Remote.AssignFreeUnits != Local.AssignFreeUnits ||
      Remote.TransitionUnits != Local.TransitionUnits)
    return Fail("WorkCounters diverge from the local module");
  if (Stats.value().Session.LiveInstances != Gen.liveInstances())
    return Fail("live-instance count diverges");

  // Occupancy probe: a Check over every (op, cycle) in the window proves
  // the occupancy itself (not just the sampled results) is identical.
  const bool Modulo = Config.Mode == QueryConfig::Modulo;
  const int ProbeBase = Modulo ? 0 : Config.MinCycle;
  const int ProbeSpan = Modulo ? Config.ModuloII : 64;
  BatchRequest Probe;
  Probe.SessionId = SessionId;
  std::vector<uint8_t> ProbeExpected;
  for (OpId Op = 0; Op < Reduced.numOperations(); ++Op)
    for (int D = 0; D < ProbeSpan; ++D) {
      Probe.Events.push_back(
          {Verb::Check, static_cast<uint32_t>(Op), ProbeBase + D, 0});
      ProbeExpected.push_back(Gen.mutableModule().check(Op, ProbeBase + D)
                                  ? 1
                                  : 0);
    }
  Expected<BatchReply> ProbeReply = C.runBatch(Probe);
  if (!ProbeReply)
    return Fail("probe: " + ProbeReply.status().render());
  if (ProbeReply.value().Results != ProbeExpected)
    return Fail("occupancy probe diverges from the local module");

  if (Status S = C.closeSession(SessionId); !S)
    return Fail("close: " + S.render());
  Out.Ok = true;
}

void runDifferential(const std::string &MachineName,
                     const MachineModel &Model, const QueryConfig &Config,
                     size_t NumClients, size_t Batches, size_t BatchLen) {
  ServerOptions Options;
  Options.SocketPath = uniqueSocket("conc");
  Options.Workers = 4;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  MachineDescription Reduced = reducedFor(Model);
  std::vector<ClientOutcome> Outcomes(NumClients);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < NumClients; ++I)
    Threads.emplace_back(runTenant, Server.value()->socketPath(),
                         MachineName, std::cref(Reduced), std::cref(Config),
                         /*Seed=*/0x5eed0000 + I, Batches, BatchLen,
                         std::ref(Outcomes[I]));
  for (std::thread &T : Threads)
    T.join();
  for (size_t I = 0; I < NumClients; ++I)
    EXPECT_TRUE(Outcomes[I].Ok) << "client " << I << ": " << Outcomes[I].What;

  EXPECT_EQ(Server.value()->sessionCount(), 0u);
  Server.value()->stop();
}

TEST(ServerConcurrency, SingleClientLinearMatchesLocal) {
  runDifferential("cydra5", makeCydra5(), QueryConfig::linear(0),
                  /*NumClients=*/1, /*Batches=*/16, /*BatchLen=*/256);
}

TEST(ServerConcurrency, FourClientsLinearMatchLocal) {
  runDifferential("cydra5", makeCydra5(), QueryConfig::linear(0),
                  /*NumClients=*/4, /*Batches=*/12, /*BatchLen=*/192);
}

TEST(ServerConcurrency, SixteenClientsLinearMatchLocal) {
  runDifferential("cydra5", makeCydra5(), QueryConfig::linear(0),
                  /*NumClients=*/16, /*Batches=*/6, /*BatchLen=*/128);
}

TEST(ServerConcurrency, FourClientsModuloSharedArenaMatchLocal) {
  // All four sessions share one modulo pattern arena (same machine, same
  // II): the strongest aliasing case for the arena refactor.
  runDifferential("cydra5", makeCydra5(), QueryConfig::modulo(8),
                  /*NumClients=*/4, /*Batches=*/12, /*BatchLen=*/192);
}

TEST(ServerConcurrency, SixteenClientsModuloMatchLocal) {
  runDifferential("mips-r3000", makeMipsR3000(), QueryConfig::modulo(6),
                  /*NumClients=*/16, /*Batches=*/6, /*BatchLen=*/128);
}

TEST(ServerConcurrency, MixedConfigsShareOneMachine) {
  // Linear and modulo sessions of the same machine at once: different
  // arenas, one registry entry; nothing may bleed between them.
  ServerOptions Options;
  Options.SocketPath = uniqueSocket("mixed");
  Options.Workers = 4;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  MachineModel Model = makeCydra5();
  MachineDescription Reduced = reducedFor(Model);
  QueryConfig Linear = QueryConfig::linear(0);
  QueryConfig Modulo = QueryConfig::modulo(11);

  std::vector<ClientOutcome> Outcomes(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < 8; ++I)
    Threads.emplace_back(runTenant, Server.value()->socketPath(),
                         std::string("cydra5"), std::cref(Reduced),
                         std::cref(I % 2 ? Modulo : Linear),
                         /*Seed=*/0xabc000 + I, /*Batches=*/8,
                         /*BatchLen=*/128, std::ref(Outcomes[I]));
  for (std::thread &T : Threads)
    T.join();
  for (size_t I = 0; I < 8; ++I)
    EXPECT_TRUE(Outcomes[I].Ok) << "client " << I << ": " << Outcomes[I].What;
  EXPECT_EQ(Server.value()->sessionCount(), 0u);
}

TEST(ServerConcurrency, SessionsArePinnedToTheirConnection) {
  // A second connection must not be able to touch (or even probe) a
  // session opened by the first.
  ServerOptions Options;
  Options.SocketPath = uniqueSocket("pin");
  Options.Workers = 2;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  Expected<std::unique_ptr<RmdClient>> A =
      RmdClient::connect(Server.value()->socketPath(), 300000);
  Expected<std::unique_ptr<RmdClient>> B =
      RmdClient::connect(Server.value()->socketPath(), 300000);
  ASSERT_TRUE(bool(A));
  ASSERT_TRUE(bool(B));

  Expected<LoadMachineReply> M = A.value()->loadMachine("cydra5");
  ASSERT_TRUE(bool(M));
  OpenSessionRequest Req;
  Req.MachineId = M.value().MachineId;
  Expected<OpenSessionReply> Open = A.value()->openSession(Req);
  ASSERT_TRUE(bool(Open));

  BatchRequest Batch;
  Batch.SessionId = Open.value().SessionId;
  Batch.Events.push_back({Verb::Check, 0, 0, 0});
  Expected<BatchReply> Stolen = B.value()->runBatch(Batch);
  ASSERT_FALSE(bool(Stolen));
  EXPECT_EQ(Stolen.status().code(), ErrorCode::ProtocolError);

  // The owner can still use it.
  Expected<BatchReply> Own = A.value()->runBatch(Batch);
  EXPECT_TRUE(bool(Own)) << Own.status().render();

  // Dropping the owning connection reaps the session.
  A.value().reset();
  for (int Spin = 0; Spin < 200 && Server.value()->sessionCount(); ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Server.value()->sessionCount(), 0u);
}

TEST(ServerConcurrency, OverloadedIsStructuredNotFatal) {
  // A tiny queue with slow drain: concurrent pings may be rejected with
  // Overloaded, but every rejection is a structured reply and the server
  // keeps serving afterwards.
  ServerOptions Options;
  Options.SocketPath = uniqueSocket("ovl");
  Options.Workers = 1;
  Options.QueueCapacity = 1;
  Expected<std::unique_ptr<RmdServer>> Server =
      RmdServer::start(std::move(Options));
  ASSERT_TRUE(bool(Server)) << Server.status().render();

  std::atomic<int> OkCount{0}, OverloadCount{0}, OtherCount{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < 8; ++I)
    Threads.emplace_back([&, I] {
      Expected<std::unique_ptr<RmdClient>> C =
          RmdClient::connect(Server.value()->socketPath(), 300000);
      if (!C) {
        OtherCount.fetch_add(1);
        return;
      }
      for (int J = 0; J < 50; ++J) {
        Status S = C.value()->ping();
        if (S.isOk())
          OkCount.fetch_add(1);
        else if (S.code() == ErrorCode::Overloaded)
          OverloadCount.fetch_add(1);
        else
          OtherCount.fetch_add(1);
      }
      (void)I;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(OtherCount.load(), 0);
  EXPECT_GT(OkCount.load(), 0);
  // Whatever was rejected must be visible in the server's own tally.
  EXPECT_EQ(Server.value()->overloadRejections(),
            static_cast<uint64_t>(OverloadCount.load()));

  // Still alive and well after the storm.
  Expected<std::unique_ptr<RmdClient>> C =
      RmdClient::connect(Server.value()->socketPath(), 300000);
  ASSERT_TRUE(bool(C));
  EXPECT_TRUE(C.value()->ping().isOk());
}

} // namespace
