//===- tests/DifferentialQueryTest.cpp - Lockstep differential harness ----===//
///
/// Exercises the verify/ subsystem: the ShadowQueryModule lockstep checker,
/// the QueryTrace recorder/replayer wired into all three schedulers, and
/// the seeded trace fuzzer. The positive direction fuzzes every machine
/// model in linear and modulo modes across representation and description
/// pairings and demands zero divergences (the paper's equivalence
/// guarantee); the negative direction plants a deliberately broken module
/// and demands it is caught with a rendered occupancy diff.
///
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ListScheduler.h"
#include "sched/OperationDrivenScheduler.h"
#include "verify/QueryTrace.h"
#include "verify/ShadowQueryModule.h"
#include "verify/TraceFuzzer.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace rmd;

namespace {

/// The seven machine models of the test matrix.
std::vector<std::pair<std::string, MachineDescription>> allModels() {
  std::vector<std::pair<std::string, MachineDescription>> Models;
  Models.emplace_back("fig1", makeFig1Machine());
  Models.emplace_back("cydra5", makeCydra5().MD);
  Models.emplace_back("alpha21064", makeAlpha21064().MD);
  Models.emplace_back("mips-r3000", makeMipsR3000().MD);
  Models.emplace_back("toy-vliw", makeToyVliw().MD);
  Models.emplace_back("playdoh", makePlayDoh().MD);
  Models.emplace_back("m88100", makeM88100().MD);
  return Models;
}

/// A query module that consults a real discrete module but reports every
/// slot as free: the planted bug the shadow harness must catch.
class AlwaysFreeModule : public ContentionQueryModule {
public:
  AlwaysFreeModule(const MachineDescription &MD, QueryConfig Config)
      : Inner(MD, Config) {}

  bool check(OpId Op, int Cycle) override {
    Inner.check(Op, Cycle);
    return true; // the lie
  }
  void assign(OpId Op, int Cycle, InstanceId Instance) override {
    Inner.assign(Op, Cycle, Instance);
  }
  void free(OpId Op, int Cycle, InstanceId Instance) override {
    Inner.free(Op, Cycle, Instance);
  }
  void assignAndFree(OpId Op, int Cycle, InstanceId Instance,
                     std::vector<InstanceId> &Evicted) override {
    Inner.assignAndFree(Op, Cycle, Instance, Evicted);
  }
  void reset() override { Inner.reset(); }

private:
  DiscreteQueryModule Inner;
};

} // namespace

//===----------------------------------------------------------------------===//
// Fuzzed lockstep verification across all pairings
//===----------------------------------------------------------------------===//

/// One machine model per test instance, so failures name the machine.
class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllPairingsAgreeUnderFuzzedTraffic) {
  auto [Name, MD] = allModels()[static_cast<size_t>(GetParam())];
  ExpandedMachine EM = expandAlternatives(MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  // Linear with a negative window floor (dangling-reservation boundary
  // conditions) and modulo (wrap-around addressing, negative cycles).
  std::vector<QueryConfig> Configs = {QueryConfig::linear(-6),
                                      QueryConfig::modulo(11)};
  struct Pairing {
    const char *Label;
    const MachineDescription *CandMD;
    bool CandBitvector;
  };
  const Pairing Pairings[] = {
      {"bitvector-original", &EM.Flat, true},
      {"discrete-reduced", &Reduced, false},
      {"bitvector-reduced", &Reduced, true},
  };

  uint64_t Seed = 1;
  for (QueryConfig Config : Configs) {
    // The union-mask fast path only changes bitvector internals; running
    // the whole matrix with it on differentially verifies its accounting
    // fix never changes answers.
    Config.UnionAlternativeCheck = true;
    for (const Pairing &P : Pairings) {
      ShadowOptions Options;
      Options.RefMD = &EM.Flat;
      Options.CandMD = P.CandMD;
      Options.Config = Config;
      Options.RefLabel = "discrete-original";
      Options.CandLabel = P.Label;
      std::string Reports;
      Options.OnDivergence = [&Reports](const std::string &Report) {
        Reports += Report + "\n";
      };

      auto Cand = P.CandBitvector
                      ? std::unique_ptr<ContentionQueryModule>(
                            new BitvectorQueryModule(*P.CandMD, Config))
                      : std::unique_ptr<ContentionQueryModule>(
                            new DiscreteQueryModule(*P.CandMD, Config));
      ShadowQueryModule Shadow(
          std::make_unique<DiscreteQueryModule>(EM.Flat, Config),
          std::move(Cand), Options);

      FuzzOptions FO;
      FO.Seed = Seed++;
      FO.Steps = 500;
      FuzzStats Stats =
          fuzzQueryModule(Shadow, EM.Flat, EM.Groups, Config, FO);

      EXPECT_GT(Stats.totalCalls(), 500u) << Name << " vs " << P.Label;
      EXPECT_GT(Stats.AssignFrees, 0u) << Name << " vs " << P.Label;
      EXPECT_EQ(Shadow.divergenceCount(), 0u)
          << Name << " vs " << P.Label << "\n" << Reports;
      EXPECT_EQ(Shadow.verifyEndState(), 0u)
          << Name << " vs " << P.Label << "\n" << Reports;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, DifferentialFuzz,
                         ::testing::Range(0, 7));

//===----------------------------------------------------------------------===//
// The harness catches a planted bug
//===----------------------------------------------------------------------===//

TEST(ShadowQueryModule, CatchesBrokenModuleWithRenderedDiff) {
  MachineDescription MD = makeFig1Machine();
  QueryConfig Config = QueryConfig::linear();

  ShadowOptions Options;
  Options.RefMD = &MD;
  Options.CandMD = &MD;
  Options.Config = Config;
  Options.RefLabel = "discrete";
  Options.CandLabel = "broken";
  std::vector<std::string> Reports;
  Options.OnDivergence = [&Reports](const std::string &Report) {
    Reports.push_back(Report);
  };

  ShadowQueryModule Shadow(
      std::make_unique<DiscreteQueryModule>(MD, Config),
      std::make_unique<AlwaysFreeModule>(MD, Config), Options);

  OpId A = MD.findOperation("A");
  EXPECT_TRUE(Shadow.check(A, 0)); // both agree on an empty table
  Shadow.assign(A, 0, 7);
  EXPECT_EQ(Shadow.divergenceCount(), 0u);

  // The reference sees the conflict, the broken module lies: caught, and
  // the reference's answer is what the caller observes.
  EXPECT_FALSE(Shadow.check(A, 0));
  ASSERT_EQ(Shadow.divergenceCount(), 1u);
  ASSERT_EQ(Reports.size(), 1u);
  const std::string &Report = Reports[0];
  EXPECT_NE(Report.find("query-module divergence"), std::string::npos);
  EXPECT_NE(Report.find("check(op="), std::string::npos);
  EXPECT_NE(Report.find("discrete=busy"), std::string::npos);
  EXPECT_NE(Report.find("broken=free"), std::string::npos);
  // The rendered diff names the live instance and shows both occupancy
  // tables rebuilt from it.
  EXPECT_NE(Report.find("live instances (1)"), std::string::npos);
  EXPECT_NE(Report.find("#7=A@0"), std::string::npos);
  EXPECT_NE(Report.find("check() disagreements"), std::string::npos);
  EXPECT_NE(Report.find("A@0: discrete=busy broken=free"),
            std::string::npos);
  EXPECT_NE(Report.find("expected occupancy"), std::string::npos);
  EXPECT_NE(Report.find("r0"), std::string::npos);

  // The end-state probe finds the same corruption.
  EXPECT_GT(Shadow.verifyEndState(), 0u);
}

TEST(ShadowQueryModuleDeathTest, DefaultHandlerIsFatal) {
  MachineDescription MD = makeFig1Machine();
  QueryConfig Config = QueryConfig::linear();
  OpId A = MD.findOperation("A");
  EXPECT_DEATH(
      {
        ShadowOptions Options;
        Options.RefMD = &MD;
        Options.CandMD = &MD;
        Options.Config = Config;
        ShadowQueryModule Shadow(
            std::make_unique<DiscreteQueryModule>(MD, Config),
            std::make_unique<AlwaysFreeModule>(MD, Config), Options);
        Shadow.assign(A, 0, 1);
        Shadow.check(A, 0);
      },
      "divergence");
}

//===----------------------------------------------------------------------===//
// Trace recording, serialization, and standalone replay
//===----------------------------------------------------------------------===//

TEST(QueryTrace, ListSchedulerTraceReplaysAcrossAllPairings) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  // A block with enough pressure to produce interesting traffic, plus a
  // dangling predecessor reservation to exercise negative cycles.
  DepGraph G("block");
  std::vector<NodeId> Nodes;
  for (int I = 0; I < 8; ++I)
    Nodes.push_back(G.addNode(static_cast<OpId>(
        I % Toy.MD.numOperations())));
  for (int I = 0; I + 1 < 8; I += 2)
    G.addEdge(Nodes[static_cast<size_t>(I)],
              Nodes[static_cast<size_t>(I + 1)],
              Toy.Latency[G.opOf(Nodes[static_cast<size_t>(I)])]);

  QueryConfig Config = QueryConfig::linear(-8);
  std::vector<DanglingOp> Dangling = {{EM.Groups[0][0], -2}};

  QueryTrace Trace;
  Trace.Machine = EM.Flat.name();
  Trace.Config = Config;
  DiscreteQueryModule Module(EM.Flat, Config);
  ListScheduleResult Result =
      listSchedule(G, EM.Groups, Module, Dangling, &Trace);
  ASSERT_TRUE(Result.Success);
  ASSERT_FALSE(Trace.Records.empty());
  // Seeding is recorded too: the first record is the dangling assign.
  EXPECT_EQ(Trace.Records.front().Call, QueryTraceRecord::Assign);
  EXPECT_EQ(Trace.Records.front().Cycle, -2);

  // Tracing is transparent: an untraced run schedules identically.
  DiscreteQueryModule Plain(EM.Flat, Config);
  ListScheduleResult Untraced = listSchedule(G, EM.Groups, Plain, Dangling);
  EXPECT_EQ(Untraced.Time, Result.Time);
  EXPECT_EQ(Untraced.Alternative, Result.Alternative);

  // The recorded stream replays with zero mismatches against every other
  // representation/description pairing.
  struct Target {
    const char *Label;
    std::unique_ptr<ContentionQueryModule> Module;
  };
  Target Targets[] = {
      {"bitvector-original",
       std::make_unique<BitvectorQueryModule>(EM.Flat, Config)},
      {"discrete-reduced",
       std::make_unique<DiscreteQueryModule>(Reduced, Config)},
      {"bitvector-reduced",
       std::make_unique<BitvectorQueryModule>(Reduced, Config)},
  };
  for (Target &T : Targets) {
    ReplayResult RR = replayTrace(Trace, *T.Module);
    EXPECT_EQ(RR.Calls, Trace.Records.size()) << T.Label;
    EXPECT_EQ(RR.AnswerMismatches, 0u) << T.Label;
  }
}

TEST(QueryTrace, SerializationRoundTrip) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  QueryConfig Config = QueryConfig::modulo(6);

  // Mint a trace by fuzzing a traced discrete module.
  QueryTraceLog Log;
  QueryTrace &Trace = Log.beginSegment("toy-vliw", Config);
  DiscreteQueryModule Inner(EM.Flat, Config);
  TracingQueryModule Tracer(Inner, Trace);
  FuzzOptions FO;
  FO.Seed = 7;
  FO.Steps = 200;
  fuzzQueryModule(Tracer, EM.Flat, EM.Groups, Config, FO);
  ASSERT_FALSE(Trace.Records.empty());

  std::ostringstream OS;
  Log.serialize(OS);

  QueryTraceLog Parsed;
  std::string Error;
  std::istringstream IS(OS.str());
  ASSERT_TRUE(QueryTraceLog::deserialize(IS, Parsed, &Error)) << Error;
  ASSERT_EQ(Parsed.Segments.size(), 1u);
  EXPECT_EQ(Parsed.Segments[0].Machine, "toy-vliw");
  EXPECT_EQ(Parsed.Segments[0].Config.Mode, QueryConfig::Modulo);
  EXPECT_EQ(Parsed.Segments[0].Config.ModuloII, 6);
  EXPECT_EQ(Parsed.totalRecords(), Log.totalRecords());

  // Byte-identical re-serialization: the format loses nothing it needs.
  std::ostringstream OS2;
  Parsed.serialize(OS2);
  EXPECT_EQ(OS.str(), OS2.str());

  // The parsed trace replays cleanly against a fresh module of the other
  // representation.
  BitvectorQueryModule Fresh(EM.Flat, Config);
  ReplayResult RR = replayTrace(Parsed.Segments[0], Fresh);
  EXPECT_EQ(RR.AnswerMismatches, 0u);
}

TEST(QueryTrace, DeserializeRejectsMalformedInput) {
  QueryTraceLog Out;
  std::string Error;

  std::istringstream NoSegment("c 0 0 1\n");
  EXPECT_FALSE(QueryTraceLog::deserialize(NoSegment, Out, &Error));
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_NE(Error.find("before any segment"), std::string::npos);

  std::istringstream Unterminated("segment m linear 0\nc 0 0 1\n");
  EXPECT_FALSE(QueryTraceLog::deserialize(Unterminated, Out, &Error));
  EXPECT_NE(Error.find("unterminated"), std::string::npos);

  std::istringstream BadTag("segment m linear 0\nz 1 2 3\nend\n");
  EXPECT_FALSE(QueryTraceLog::deserialize(BadTag, Out, &Error));
  EXPECT_NE(Error.find("unknown record tag"), std::string::npos);

  std::istringstream BadII("segment m modulo 0\nend\n");
  EXPECT_FALSE(QueryTraceLog::deserialize(BadII, Out, &Error));
  EXPECT_NE(Error.find("positive II"), std::string::npos);

  // Comments and blank lines are fine.
  std::istringstream Commented(
      "# a trace\n\nsegment m linear -4\nc 0 -1 1\nend\n");
  EXPECT_TRUE(QueryTraceLog::deserialize(Commented, Out, &Error)) << Error;
  ASSERT_EQ(Out.Segments.size(), 1u);
  EXPECT_EQ(Out.Segments[0].Config.MinCycle, -4);
  ASSERT_EQ(Out.Segments[0].Records.size(), 1u);
  EXPECT_EQ(Out.Segments[0].Records[0].Cycle, -1);
}

TEST(QueryTrace, ModuloSchedulerEmitsOneSegmentPerAttempt) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  // A software-pipelinable loop with a recurrence.
  DepGraph G("loop");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(1 % Toy.MD.numOperations());
  NodeId C = G.addNode(2 % Toy.MD.numOperations());
  G.addEdge(A, B, Toy.Latency[G.opOf(A)]);
  G.addEdge(B, C, Toy.Latency[G.opOf(B)]);
  G.addEdge(C, A, 1, /*Distance=*/1);

  QueryEnvironment Env;
  Env.FlatMD = &EM.Flat;
  Env.Groups = &EM.Groups;
  Env.MakeModule = [&EM](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, C));
  };

  ModuloScheduleOptions Options;
  QueryTraceLog Log;
  Options.TraceLog = &Log;
  ModuloScheduleResult Result = moduloSchedule(G, Toy.MD, Env, Options);
  ASSERT_TRUE(Result.Success);
  ASSERT_GE(Log.Segments.size(), 1u);
  // Attempts that died in the modulo-self-conflict prefilter build no
  // module, hence record no segment.
  EXPECT_LE(Log.Segments.size(), Result.Stats.DecisionsPerAttempt.size());
  EXPECT_EQ(Log.Segments.back().Config.ModuloII, Result.II);
  EXPECT_EQ(Log.Segments.back().Machine, EM.Flat.name());

  // Tracing does not perturb scheduling.
  ModuloScheduleResult Untraced = moduloSchedule(G, Toy.MD, Env, {});
  EXPECT_EQ(Untraced.II, Result.II);
  EXPECT_EQ(Untraced.Time, Result.Time);
  EXPECT_EQ(Untraced.Counters.totalUnits(), Result.Counters.totalUnits());

  // Every attempt's stream replays cleanly against the reduced bitvector
  // module at that attempt's II.
  for (const QueryTrace &Segment : Log.Segments) {
    BitvectorQueryModule Fresh(Reduced, Segment.Config);
    ReplayResult RR = replayTrace(Segment, Fresh);
    EXPECT_EQ(RR.AnswerMismatches, 0u)
        << "II=" << Segment.Config.ModuloII;
  }
}

TEST(QueryTrace, OperationDrivenSchedulerTraceReplays) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  DepGraph G("block");
  std::vector<NodeId> Nodes;
  for (int I = 0; I < 6; ++I)
    Nodes.push_back(
        G.addNode(static_cast<OpId>(I % Toy.MD.numOperations())));
  G.addEdge(Nodes[0], Nodes[2], Toy.Latency[G.opOf(Nodes[0])]);
  G.addEdge(Nodes[1], Nodes[3], Toy.Latency[G.opOf(Nodes[1])]);
  G.addEdge(Nodes[2], Nodes[5], Toy.Latency[G.opOf(Nodes[2])]);

  QueryConfig Config = QueryConfig::linear(-8);
  std::vector<DanglingOp> Dangling = {{EM.Groups[0][0], -1}};

  QueryTrace Trace;
  Trace.Machine = EM.Flat.name();
  Trace.Config = Config;
  DiscreteQueryModule Module(EM.Flat, Config);
  OperationDrivenResult Result = operationDrivenSchedule(
      G, EM.Groups, EM.Flat, Module, Dangling, {}, &Trace);
  ASSERT_TRUE(Result.Success);
  ASSERT_FALSE(Trace.Records.empty());

  BitvectorQueryModule Fresh(Reduced, Config);
  ReplayResult RR = replayTrace(Trace, Fresh);
  EXPECT_EQ(RR.Calls, Trace.Records.size());
  EXPECT_EQ(RR.AnswerMismatches, 0u);
}

//===----------------------------------------------------------------------===//
// Fuzzer coverage properties
//===----------------------------------------------------------------------===//

TEST(TraceFuzzer, IsDeterministicAndCoversAllCallKinds) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  QueryConfig Config = QueryConfig::modulo(7);

  FuzzOptions FO;
  FO.Seed = 42;
  FO.Steps = 1500;

  QueryTraceLog LogA, LogB;
  {
    DiscreteQueryModule M(EM.Flat, Config);
    TracingQueryModule T(M, LogA.beginSegment("toy", Config));
    FuzzStats Stats = fuzzQueryModule(T, EM.Flat, EM.Groups, Config, FO);
    EXPECT_GT(Stats.Checks, 0u);
    EXPECT_GT(Stats.CheckAlternatives, 0u);
    EXPECT_GT(Stats.Assigns, 0u);
    EXPECT_GT(Stats.Frees, 0u);
    EXPECT_GT(Stats.AssignFrees, 0u);
    EXPECT_GT(Stats.Evictions, 0u);
    EXPECT_GT(Stats.Storms, 0u);
    EXPECT_GT(Stats.Resets, 0u);
  }
  {
    DiscreteQueryModule M(EM.Flat, Config);
    TracingQueryModule T(M, LogB.beginSegment("toy", Config));
    fuzzQueryModule(T, EM.Flat, EM.Groups, Config, FO);
  }

  // Same seed, same machine, same config: byte-identical call streams.
  std::ostringstream SA, SB;
  LogA.serialize(SA);
  LogB.serialize(SB);
  EXPECT_EQ(SA.str(), SB.str());
}
