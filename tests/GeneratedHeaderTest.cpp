//===- tests/GeneratedHeaderTest.cpp - mdlc output compiles & is fresh ----===//
//
// tests/generated/fig1_tables.h is the mdlc (--emit=c++) output for the
// reduced Figure 1 machine, checked in. Including it here proves the
// generated code compiles as constexpr C++; the freshness test proves the
// checked-in file matches what the current toolchain generates; the
// semantic test proves the tables mean what the library means.
//
//===----------------------------------------------------------------------===//

#include "generated/fig1_tables.h"

#include "machines/MachineModel.h"
#include "mdl/CppGen.h"
#include "reduce/Reduction.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace rmd;

#ifndef RMD_SOURCE_DIR
#define RMD_SOURCE_DIR "."
#endif

namespace {

MachineDescription reducedFig1() {
  MachineDescription Flat = expandAlternatives(makeFig1Machine()).Flat;
  return reduceMachine(Flat).Reduced;
}

} // namespace

// constexpr usability: the tables are compile-time constants.
static_assert(fig1_tables::kNumResources == 2);
static_assert(fig1_tables::kNumOperations == 2);
static_assert(fig1_tables::kOperations[1].NumUsages == 4);
static_assert(fig1_tables::kUsages_B[0].Resource == 0);

TEST(GeneratedHeader, MatchesLibrarySemantics) {
  MachineDescription Reduced = reducedFig1();
  ASSERT_EQ(fig1_tables::kNumResources, Reduced.numResources());
  ASSERT_EQ(fig1_tables::kNumOperations, Reduced.numOperations());
  EXPECT_EQ(fig1_tables::kMaxTableLength,
            static_cast<unsigned>(Reduced.maxTableLength()));

  for (OpId Op = 0; Op < Reduced.numOperations(); ++Op) {
    const fig1_tables::Operation &Gen = fig1_tables::kOperations[Op];
    const Operation &Lib = Reduced.operation(Op);
    EXPECT_EQ(Gen.Name, Lib.Name);
    ASSERT_EQ(Gen.NumUsages, Lib.table().usageCount());
    for (unsigned U = 0; U < Gen.NumUsages; ++U) {
      EXPECT_EQ(Gen.Usages[U].Resource, Lib.table().usages()[U].Resource);
      EXPECT_EQ(Gen.Usages[U].Cycle,
                static_cast<unsigned>(Lib.table().usages()[U].Cycle));
    }
  }
}

TEST(GeneratedHeader, CheckedInFileIsFresh) {
  std::ifstream In(std::string(RMD_SOURCE_DIR) +
                   "/tests/generated/fig1_tables.h");
  ASSERT_TRUE(In.good()) << "missing tests/generated/fig1_tables.h";
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_EQ(SS.str(), writeCppTables(reducedFig1(), "fig1_tables"))
      << "regenerate tests/generated/fig1_tables.h (mdlc output changed)";
}
