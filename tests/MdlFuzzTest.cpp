//===- tests/MdlFuzzTest.cpp - Parser robustness under hostile input ------===//
//
// The MDL parser is the library's user-input boundary: it must reject
// arbitrary garbage with diagnostics, never crash, and never return a
// description that fails validation.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "mdl/Parser.h"
#include "mdl/Writer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

const char *Alphabet[] = {
    "machine", "resources", "operation", "alternative", "at", "latency",
    "role",    "{",         "}",         ",",           ";",  "..",
    "0",       "7",         "42",        "r0",          "x",  "load",
    "#c\n",    " ",         "\n",        "@",           "$",  "%",
};

/// Parsing must terminate without crashing; on success the result must
/// validate.
void parseMustBehave(const std::string &Text) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  if (MD.has_value()) {
    DiagnosticEngine Check;
    EXPECT_TRUE(MD->validate(Check));
  } else {
    EXPECT_TRUE(Diags.hasErrors());
  }
}

} // namespace

TEST(MdlFuzz, RandomTokenSoup) {
  RNG R(0xF022);
  for (int Trial = 0; Trial < 3000; ++Trial) {
    std::string Text;
    unsigned Tokens = 1 + static_cast<unsigned>(R.nextBelow(40));
    for (unsigned T = 0; T < Tokens; ++T) {
      Text += Alphabet[R.nextBelow(std::size(Alphabet))];
      Text += ' ';
    }
    parseMustBehave(Text);
  }
}

TEST(MdlFuzz, RandomBytes) {
  RNG R(0xB17E);
  for (int Trial = 0; Trial < 1500; ++Trial) {
    std::string Text;
    unsigned Len = static_cast<unsigned>(R.nextBelow(120));
    for (unsigned I = 0; I < Len; ++I)
      Text += static_cast<char>(R.nextInRange(1, 126));
    parseMustBehave(Text);
  }
}

TEST(MdlFuzz, MutationsOfValidInput) {
  std::string Valid = writeMdl(makeCydra5().MD);
  RNG R(0x5EED);
  for (int Trial = 0; Trial < 1500; ++Trial) {
    std::string Text = Valid;
    // Apply 1-4 random deletions/substitutions/duplications.
    unsigned Edits = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned E = 0; E < Edits && !Text.empty(); ++E) {
      size_t Pos = R.nextBelow(Text.size());
      switch (R.nextBelow(3)) {
      case 0:
        Text.erase(Pos, 1 + R.nextBelow(5));
        break;
      case 1:
        Text[Pos] = static_cast<char>(R.nextInRange(32, 126));
        break;
      default:
        Text.insert(Pos, std::string(1 + R.nextBelow(3),
                                     static_cast<char>(
                                         R.nextInRange(32, 126))));
        break;
      }
    }
    parseMustBehave(Text);
  }
}

TEST(MdlFuzz, TruncationsOfValidInput) {
  std::string Valid = writeMdl(makeMipsR3000().MD);
  for (size_t Cut = 0; Cut < Valid.size(); Cut += 13)
    parseMustBehave(Valid.substr(0, Cut));
}
