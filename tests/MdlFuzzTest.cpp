//===- tests/MdlFuzzTest.cpp - Parser robustness under hostile input ------===//
//
// The MDL parser is the library's user-input boundary: it must reject
// arbitrary garbage with diagnostics, never crash, and never return a
// description that fails validation.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "mdl/Parser.h"
#include "mdl/Writer.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

const char *Alphabet[] = {
    "machine", "resources", "operation", "alternative", "at", "latency",
    "role",    "{",         "}",         ",",           ";",  "..",
    "0",       "7",         "42",        "r0",          "x",  "load",
    "#c\n",    " ",         "\n",        "@",           "$",  "%",
};

/// Parsing must terminate without crashing; on success the result must
/// validate.
void parseMustBehave(const std::string &Text) {
  DiagnosticEngine Diags;
  std::optional<MachineDescription> MD = parseMdl(Text, Diags);
  if (MD.has_value()) {
    DiagnosticEngine Check;
    EXPECT_TRUE(MD->validate(Check));
  } else {
    EXPECT_TRUE(Diags.hasErrors());
  }
}

} // namespace

TEST(MdlFuzz, RandomTokenSoup) {
  RNG R(0xF022);
  for (int Trial = 0; Trial < 3000; ++Trial) {
    std::string Text;
    unsigned Tokens = 1 + static_cast<unsigned>(R.nextBelow(40));
    for (unsigned T = 0; T < Tokens; ++T) {
      Text += Alphabet[R.nextBelow(std::size(Alphabet))];
      Text += ' ';
    }
    parseMustBehave(Text);
  }
}

TEST(MdlFuzz, RandomBytes) {
  RNG R(0xB17E);
  for (int Trial = 0; Trial < 1500; ++Trial) {
    std::string Text;
    unsigned Len = static_cast<unsigned>(R.nextBelow(120));
    for (unsigned I = 0; I < Len; ++I)
      Text += static_cast<char>(R.nextInRange(1, 126));
    parseMustBehave(Text);
  }
}

TEST(MdlFuzz, MutationsOfValidInput) {
  std::string Valid = writeMdl(makeCydra5().MD);
  RNG R(0x5EED);
  for (int Trial = 0; Trial < 1500; ++Trial) {
    std::string Text = Valid;
    // Apply 1-4 random deletions/substitutions/duplications.
    unsigned Edits = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned E = 0; E < Edits && !Text.empty(); ++E) {
      size_t Pos = R.nextBelow(Text.size());
      switch (R.nextBelow(3)) {
      case 0:
        Text.erase(Pos, 1 + R.nextBelow(5));
        break;
      case 1:
        Text[Pos] = static_cast<char>(R.nextInRange(32, 126));
        break;
      default:
        Text.insert(Pos, std::string(1 + R.nextBelow(3),
                                     static_cast<char>(
                                         R.nextInRange(32, 126))));
        break;
      }
    }
    parseMustBehave(Text);
  }
}

TEST(MdlFuzz, TruncationsOfValidInput) {
  std::string Valid = writeMdl(makeMipsR3000().MD);
  for (size_t Cut = 0; Cut < Valid.size(); Cut += 13)
    parseMustBehave(Valid.substr(0, Cut));
}

//===----------------------------------------------------------------------===//
// Reduction correctness under fuzzed *valid* machines
//===----------------------------------------------------------------------===//

namespace {

/// A random valid single-alternative machine: 2-6 resources, 1-5
/// operations, each with 1-4 distinct usages at cycles 0-7. ReservationTable
/// dedups, so every generated description passes validate() by
/// construction.
MachineDescription randomValidMachine(uint64_t Seed) {
  RNG R(Seed);
  MachineDescription MD("fuzz" + std::to_string(Seed));
  unsigned NumResources = 2 + static_cast<unsigned>(R.nextBelow(5));
  for (unsigned I = 0; I < NumResources; ++I)
    MD.addResource("r" + std::to_string(I));
  unsigned NumOps = 1 + static_cast<unsigned>(R.nextBelow(5));
  for (unsigned I = 0; I < NumOps; ++I) {
    ReservationTable Table;
    unsigned NumUsages = 1 + static_cast<unsigned>(R.nextBelow(4));
    for (unsigned U = 0; U < NumUsages; ++U)
      Table.addUsage(static_cast<ResourceId>(R.nextBelow(NumResources)),
                     static_cast<int>(R.nextBelow(8)));
    MD.addOperation("op" + std::to_string(I), std::move(Table));
  }
  return MD;
}

} // namespace

// Every fuzzed valid machine must reduce successfully AND report the
// verification verdict into the stats registry: after a checked reduction,
// the snapshot shows exactly one passed FLM re-verification and zero
// violations. This pins the observability layer to the paper's Theorem 1
// check — a reduction that silently skips verification (or a counter that
// drifts from the verifier) fails here across 40 machine shapes.
TEST(MdlFuzz, FuzzedValidMachinesReportFlmPreserved) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    MachineDescription MD = randomValidMachine(Seed);
    DiagnosticEngine Check;
    ASSERT_TRUE(MD.validate(Check)) << "seed " << Seed;

    StatsRegistry::instance().reset();
    Expected<ReductionResult> Result = reduceMachineChecked(MD);
    ASSERT_TRUE(Result.hasValue())
        << "seed " << Seed << ": " << Result.status().render();

    StatsSnapshot Snap = StatsRegistry::instance().snapshot();
    auto Preserved = Snap.Counters.find("reduce.flm_preserved");
    auto Violations = Snap.Counters.find("reduce.flm_violations");
    ASSERT_NE(Preserved, Snap.Counters.end()) << "seed " << Seed;
    ASSERT_NE(Violations, Snap.Counters.end()) << "seed " << Seed;
    EXPECT_EQ(Preserved->second, 1u) << "seed " << Seed;
    EXPECT_EQ(Violations->second, 0u) << "seed " << Seed;
  }
}
