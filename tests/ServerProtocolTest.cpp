//===- tests/ServerProtocolTest.cpp - rmd-wire-v1 golden tests ------------===//
//
// Wire-format tests for server/Protocol.h: every message type round-trips
// through encode -> decode to an identical value (and re-encodes to the
// identical bytes); truncated, oversized, garbage, wrong-version, and
// trailing-byte frames are all rejected with structured errors.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include "gtest/gtest.h"

using namespace rmd;
using namespace rmd::wire;

namespace {

/// Decodes a request payload end to end: header + body + type check.
template <typename T, typename DecodeFn>
Expected<T> decodeRequestPayload(const std::vector<uint8_t> &Payload,
                                 MessageType Type, DecodeFn Decode) {
  WireReader In(Payload);
  Expected<FrameHeader> Header = decodeHeader(In, /*ExpectResponse=*/false);
  if (!Header)
    return Header.status();
  EXPECT_EQ(Header.value().Type, static_cast<uint8_t>(Type));
  return Decode(In);
}

template <typename T, typename DecodeFn>
Expected<T> decodeReplyPayload(const std::vector<uint8_t> &Payload,
                               MessageType Type, DecodeFn Decode,
                               uint32_t ExpectId) {
  WireReader In(Payload);
  Expected<FrameHeader> Header = decodeHeader(In, /*ExpectResponse=*/true);
  if (!Header)
    return Header.status();
  EXPECT_EQ(Header.value().Type,
            static_cast<uint8_t>(Type) | kResponseBit);
  EXPECT_EQ(Header.value().RequestId, ExpectId);
  Status ServerStatus = Status::ok();
  Status S = decodeReplyStatus(In, ServerStatus);
  if (!S)
    return S;
  if (!ServerStatus.isOk())
    return ServerStatus;
  return Decode(In);
}

TEST(ServerProtocol, PingRoundTrip) {
  std::vector<uint8_t> Bytes = encodeRequest(7, PingRequest{});
  Expected<PingRequest> R = decodeRequestPayload<PingRequest>(
      Bytes, MessageType::Ping, decodePingRequest);
  ASSERT_TRUE(bool(R));

  std::vector<uint8_t> Reply = encodeReply(7, PingReply{});
  Expected<PingReply> D = decodeReplyPayload<PingReply>(
      Reply, MessageType::Ping, decodePingReply, 7);
  ASSERT_TRUE(bool(D));
}

TEST(ServerProtocol, LoadMachineRoundTrip) {
  LoadMachineRequest Req;
  Req.Name = "cydra5";
  std::vector<uint8_t> Bytes = encodeRequest(42, Req);
  Expected<LoadMachineRequest> R = decodeRequestPayload<LoadMachineRequest>(
      Bytes, MessageType::LoadMachine, decodeLoadMachineRequest);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R.value().Name, "cydra5");
  // Re-encoding the decoded value reproduces the identical bytes.
  EXPECT_EQ(encodeRequest(42, R.value()), Bytes);

  LoadMachineReply Reply;
  Reply.MachineId = 3;
  Reply.Degraded = 1;
  Reply.Bitvector = 1;
  Reply.NumOperations = 32;
  Reply.OriginalResources = 46;
  Reply.ReducedResources = 15;
  std::vector<uint8_t> ReplyBytes = encodeReply(42, Reply);
  Expected<LoadMachineReply> D = decodeReplyPayload<LoadMachineReply>(
      ReplyBytes, MessageType::LoadMachine, decodeLoadMachineReply, 42);
  ASSERT_TRUE(bool(D));
  EXPECT_EQ(D.value().MachineId, 3u);
  EXPECT_EQ(D.value().Degraded, 1);
  EXPECT_EQ(D.value().Bitvector, 1);
  EXPECT_EQ(D.value().NumOperations, 32u);
  EXPECT_EQ(D.value().OriginalResources, 46u);
  EXPECT_EQ(D.value().ReducedResources, 15u);
  EXPECT_EQ(encodeReply(42, D.value()), ReplyBytes);
}

TEST(ServerProtocol, OpenSessionRoundTrip) {
  OpenSessionRequest Req;
  Req.MachineId = 5;
  Req.Modulo = 1;
  Req.UnionAlt = 1;
  Req.ModuloII = 13;
  Req.MinCycle = -4;
  Req.Tenant = "tenant-a";
  std::vector<uint8_t> Bytes = encodeRequest(9, Req);
  Expected<OpenSessionRequest> R = decodeRequestPayload<OpenSessionRequest>(
      Bytes, MessageType::OpenSession, decodeOpenSessionRequest);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R.value().MachineId, 5u);
  EXPECT_EQ(R.value().Modulo, 1);
  EXPECT_EQ(R.value().UnionAlt, 1);
  EXPECT_EQ(R.value().ModuloII, 13);
  EXPECT_EQ(R.value().MinCycle, -4);
  EXPECT_EQ(R.value().Tenant, "tenant-a");
  EXPECT_EQ(encodeRequest(9, R.value()), Bytes);

  OpenSessionReply Reply;
  Reply.SessionId = 77;
  std::vector<uint8_t> ReplyBytes = encodeReply(9, Reply);
  Expected<OpenSessionReply> D = decodeReplyPayload<OpenSessionReply>(
      ReplyBytes, MessageType::OpenSession, decodeOpenSessionReply, 9);
  ASSERT_TRUE(bool(D));
  EXPECT_EQ(D.value().SessionId, 77u);
}

TEST(ServerProtocol, BatchRoundTrip) {
  BatchRequest Req;
  Req.SessionId = 11;
  Req.Events.push_back({Verb::Check, 3, 10, 0});
  Req.Events.push_back({Verb::CheckAssign, 4, -2, 17});
  Req.Events.push_back({Verb::Free, 4, -2, 17});
  Req.Events.push_back({Verb::AssignFree, 1, 0, 18});
  Req.Events.push_back({Verb::Reset, 0, 0, 0});
  std::vector<uint8_t> Bytes = encodeRequest(100, Req);
  Expected<BatchRequest> R = decodeRequestPayload<BatchRequest>(
      Bytes, MessageType::Batch, decodeBatchRequest);
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R.value().Events.size(), 5u);
  EXPECT_EQ(R.value().SessionId, 11u);
  EXPECT_EQ(R.value().Events[1].TheVerb, Verb::CheckAssign);
  EXPECT_EQ(R.value().Events[1].Op, 4u);
  EXPECT_EQ(R.value().Events[1].Cycle, -2);
  EXPECT_EQ(R.value().Events[1].Instance, 17);
  EXPECT_EQ(encodeRequest(100, R.value()), Bytes);

  BatchReply Reply;
  Reply.Results = {1, 0, kResultDone, 2, kResultDone};
  std::vector<uint8_t> ReplyBytes = encodeReply(100, Reply);
  Expected<BatchReply> D = decodeReplyPayload<BatchReply>(
      ReplyBytes, MessageType::Batch, decodeBatchReply, 100);
  ASSERT_TRUE(bool(D));
  EXPECT_EQ(D.value().Results, Reply.Results);
  EXPECT_EQ(encodeReply(100, D.value()), ReplyBytes);
}

TEST(ServerProtocol, ScheduleLoopRoundTrip) {
  ScheduleLoopRequest Req;
  Req.MachineId = 2;
  Req.BudgetRatio = 8;
  Req.MaxII = 40;
  Req.DeadlineMs = 1500;
  Req.GraphText = "loop l { a: load; }";
  std::vector<uint8_t> Bytes = encodeRequest(3, Req);
  Expected<ScheduleLoopRequest> R = decodeRequestPayload<ScheduleLoopRequest>(
      Bytes, MessageType::ScheduleLoop, decodeScheduleLoopRequest);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R.value().GraphText, Req.GraphText);
  EXPECT_EQ(R.value().DeadlineMs, 1500);
  EXPECT_EQ(encodeRequest(3, R.value()), Bytes);

  ScheduleLoopReply Reply;
  Reply.Success = 1;
  Reply.Outcome = 0;
  Reply.II = 13;
  Reply.Time = {0, 5, 11, -1};
  Reply.Alternative = {0, 0, 1, -1};
  Reply.Message = "";
  std::vector<uint8_t> ReplyBytes = encodeReply(3, Reply);
  Expected<ScheduleLoopReply> D = decodeReplyPayload<ScheduleLoopReply>(
      ReplyBytes, MessageType::ScheduleLoop, decodeScheduleLoopReply, 3);
  ASSERT_TRUE(bool(D));
  EXPECT_EQ(D.value().II, 13);
  EXPECT_EQ(D.value().Time, Reply.Time);
  EXPECT_EQ(D.value().Alternative, Reply.Alternative);
  EXPECT_EQ(encodeReply(3, D.value()), ReplyBytes);
}

TEST(ServerProtocol, StatsRoundTripBothShapes) {
  std::vector<uint8_t> Bytes = encodeRequest(1, StatsRequest{6});
  Expected<StatsRequest> R = decodeRequestPayload<StatsRequest>(
      Bytes, MessageType::Stats, decodeStatsRequest);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R.value().SessionId, 6u);

  // Session-shaped reply: the module's WorkCounters plus live instances.
  StatsReply Session;
  Session.ServerWide = 0;
  Session.Session.Counters.CheckCalls = 10;
  Session.Session.Counters.AssignCalls = 4;
  Session.Session.Counters.FreeCalls = 2;
  Session.Session.LiveInstances = 2;
  std::vector<uint8_t> SessionBytes = encodeReply(1, Session);
  Expected<StatsReply> DS = decodeReplyPayload<StatsReply>(
      SessionBytes, MessageType::Stats, decodeStatsReply, 1);
  ASSERT_TRUE(bool(DS));
  EXPECT_EQ(DS.value().ServerWide, 0);
  EXPECT_EQ(DS.value().Session.Counters.CheckCalls, 10u);
  EXPECT_EQ(DS.value().Session.Counters.AssignCalls, 4u);
  EXPECT_EQ(DS.value().Session.LiveInstances, 2u);
  EXPECT_EQ(encodeReply(1, DS.value()), SessionBytes);

  // Server-shaped reply.
  StatsReply Server;
  Server.ServerWide = 1;
  Server.Server.ActiveSessions = 3;
  Server.Server.MachinesLoaded = 2;
  Server.Server.RequestsServed = 1234;
  Server.Server.OverloadRejections = 5;
  Server.Server.ProtocolErrors = 1;
  std::vector<uint8_t> ServerBytes = encodeReply(1, Server);
  Expected<StatsReply> DW = decodeReplyPayload<StatsReply>(
      ServerBytes, MessageType::Stats, decodeStatsReply, 1);
  ASSERT_TRUE(bool(DW));
  EXPECT_EQ(DW.value().ServerWide, 1);
  EXPECT_EQ(DW.value().Server.RequestsServed, 1234u);
  EXPECT_EQ(DW.value().Server.OverloadRejections, 5u);
  EXPECT_EQ(encodeReply(1, DW.value()), ServerBytes);
}

TEST(ServerProtocol, CloseAndShutdownRoundTrip) {
  std::vector<uint8_t> Bytes = encodeRequest(2, CloseSessionRequest{9});
  Expected<CloseSessionRequest> R = decodeRequestPayload<CloseSessionRequest>(
      Bytes, MessageType::CloseSession, decodeCloseSessionRequest);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R.value().SessionId, 9u);

  std::vector<uint8_t> Sd = encodeRequest(4, ShutdownRequest{});
  Expected<ShutdownRequest> RS = decodeRequestPayload<ShutdownRequest>(
      Sd, MessageType::Shutdown, decodeShutdownRequest);
  ASSERT_TRUE(bool(RS));
}

TEST(ServerProtocol, ErrorReplyCarriesCodeAndMessage) {
  Status Err(ErrorCode::Overloaded, "server request queue is full");
  std::vector<uint8_t> Bytes =
      encodeErrorReply(55, MessageType::Batch, Err);
  WireReader In(Bytes);
  Expected<FrameHeader> Header = decodeHeader(In, /*ExpectResponse=*/true);
  ASSERT_TRUE(bool(Header));
  EXPECT_EQ(Header.value().RequestId, 55u);
  Status ServerStatus = Status::ok();
  ASSERT_TRUE(bool(decodeReplyStatus(In, ServerStatus)));
  EXPECT_EQ(ServerStatus.code(), ErrorCode::Overloaded);
  EXPECT_EQ(ServerStatus.message(), "server request queue is full");
}

//===--------------------------------------------------------------------===//
// Rejection paths: every malformed shape yields a structured error.
//===--------------------------------------------------------------------===//

TEST(ServerProtocol, TruncatedFramesRejectedEverywhere) {
  // Every prefix of a valid payload (shorter than the whole) must fail to
  // decode — no partial value ever escapes.
  OpenSessionRequest Req;
  Req.MachineId = 1;
  Req.Tenant = "t";
  std::vector<uint8_t> Bytes = encodeRequest(1, Req);
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    WireReader In(Cut);
    Expected<FrameHeader> Header = decodeHeader(In, false);
    if (!Header)
      continue; // truncated inside the header: structured failure already
    Expected<OpenSessionRequest> R = decodeOpenSessionRequest(In);
    EXPECT_FALSE(bool(R)) << "prefix of length " << Len << " decoded";
    if (!R)
      EXPECT_EQ(R.status().code(), ErrorCode::ProtocolError);
  }
}

TEST(ServerProtocol, TrailingBytesRejected) {
  std::vector<uint8_t> Bytes = encodeRequest(1, StatsRequest{0});
  Bytes.push_back(0xAB);
  WireReader In(Bytes);
  ASSERT_TRUE(bool(decodeHeader(In, false)));
  Expected<StatsRequest> R = decodeStatsRequest(In);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status().code(), ErrorCode::ProtocolError);
}

TEST(ServerProtocol, WrongVersionRejected) {
  std::vector<uint8_t> Bytes = encodeRequest(1, PingRequest{});
  Bytes[0] = kWireVersion + 1;
  WireReader In(Bytes);
  Expected<FrameHeader> Header = decodeHeader(In, false);
  ASSERT_FALSE(bool(Header));
  EXPECT_EQ(Header.status().code(), ErrorCode::ProtocolError);
}

TEST(ServerProtocol, ReservedBytesMustBeZero) {
  std::vector<uint8_t> Bytes = encodeRequest(1, PingRequest{});
  Bytes[2] = 1; // reserved word
  WireReader In(Bytes);
  Expected<FrameHeader> Header = decodeHeader(In, false);
  ASSERT_FALSE(bool(Header));
  EXPECT_EQ(Header.status().code(), ErrorCode::ProtocolError);
}

TEST(ServerProtocol, ResponseBitDirectionEnforced) {
  // A response-typed payload is not a request, and vice versa.
  std::vector<uint8_t> Reply = encodeReply(1, PingReply{});
  WireReader In(Reply);
  Expected<FrameHeader> AsRequest = decodeHeader(In, /*ExpectResponse=*/false);
  EXPECT_FALSE(bool(AsRequest));

  std::vector<uint8_t> Req = encodeRequest(1, PingRequest{});
  WireReader In2(Req);
  Expected<FrameHeader> AsResponse = decodeHeader(In2, /*ExpectResponse=*/true);
  EXPECT_FALSE(bool(AsResponse));
}

TEST(ServerProtocol, UnknownTypeRejected) {
  std::vector<uint8_t> Bytes = encodeRequest(1, PingRequest{});
  Bytes[1] = 0x3F; // not a MessageType
  WireReader In(Bytes);
  Expected<FrameHeader> Header = decodeHeader(In, false);
  ASSERT_FALSE(bool(Header));
  EXPECT_EQ(Header.status().code(), ErrorCode::ProtocolError);
}

TEST(ServerProtocol, GarbageBatchCountRejectedBeforeAllocation) {
  // A batch header claiming 2^28 events in a small payload must fail on
  // the count/size cross-check, not attempt a giant reserve.
  WireWriter Out;
  Out.u8(kWireVersion);
  Out.u8(static_cast<uint8_t>(MessageType::Batch));
  Out.u16(0);
  Out.u32(1);          // request id
  Out.u32(12);         // session id
  Out.u32(0x10000000); // event count: absurd
  Out.u8(0);           // one stray byte
  std::vector<uint8_t> Bytes = Out.take();
  WireReader In(Bytes);
  ASSERT_TRUE(bool(decodeHeader(In, false)));
  Expected<BatchRequest> R = decodeBatchRequest(In);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status().code(), ErrorCode::ProtocolError);
}

TEST(ServerProtocol, UnknownVerbRejectedWithEventIndex) {
  BatchRequest Req;
  Req.SessionId = 1;
  Req.Events.push_back({Verb::Check, 0, 0, 0});
  Req.Events.push_back({Verb::Check, 1, 0, 0});
  std::vector<uint8_t> Bytes = encodeRequest(1, Req);
  // Corrupt the second event's verb byte. Layout after the 8-byte header:
  // u32 session, u32 count, then 13-byte events starting with the verb.
  Bytes[8 + 4 + 4 + 13] = 0x77;
  WireReader In(Bytes);
  ASSERT_TRUE(bool(decodeHeader(In, false)));
  Expected<BatchRequest> R = decodeBatchRequest(In);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.status().message().find("event 1"), std::string::npos)
      << R.status().message();
}

TEST(ServerProtocol, OversizedStringRejected) {
  // A string length field pointing far past the payload end.
  WireWriter Out;
  Out.u8(kWireVersion);
  Out.u8(static_cast<uint8_t>(MessageType::LoadMachine));
  Out.u16(0);
  Out.u32(1);
  Out.u32(0x7FFFFFFF); // string length: way out of bounds
  Out.u8('x');
  std::vector<uint8_t> Bytes = Out.take();
  WireReader In(Bytes);
  ASSERT_TRUE(bool(decodeHeader(In, false)));
  Expected<LoadMachineRequest> R = decodeLoadMachineRequest(In);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.status().code(), ErrorCode::ProtocolError);
}

TEST(ServerProtocol, GarbagePayloadNeverDecodes) {
  // Deterministic pseudo-random garbage: none of it should ever decode as
  // a valid header + body, and decoding must not crash.
  uint64_t State = 0x1234abcd;
  auto Next = [&State] {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::vector<uint8_t> Bytes((Next() % 64) + 1);
    for (uint8_t &B : Bytes)
      B = static_cast<uint8_t>(Next());
    Bytes[0] = static_cast<uint8_t>(Next()); // random "version" too
    WireReader In(Bytes);
    Expected<FrameHeader> Header = decodeHeader(In, false);
    if (!Header)
      continue;
    // Header happened to be plausible; the body decoders must still be
    // total. Try the type the header claims.
    switch (static_cast<MessageType>(Header.value().Type)) {
    case MessageType::Ping:
      (void)decodePingRequest(In);
      break;
    case MessageType::LoadMachine:
      (void)decodeLoadMachineRequest(In);
      break;
    case MessageType::OpenSession:
      (void)decodeOpenSessionRequest(In);
      break;
    case MessageType::Batch:
      (void)decodeBatchRequest(In);
      break;
    case MessageType::ScheduleLoop:
      (void)decodeScheduleLoopRequest(In);
      break;
    case MessageType::Stats:
      (void)decodeStatsRequest(In);
      break;
    case MessageType::CloseSession:
      (void)decodeCloseSessionRequest(In);
      break;
    case MessageType::Shutdown:
      (void)decodeShutdownRequest(In);
      break;
    }
  }
}

} // namespace
