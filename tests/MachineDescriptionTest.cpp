//===- tests/MachineDescriptionTest.cpp - mdesc/ unit tests ---------------===//

#include "machines/MachineModel.h"
#include "mdesc/MachineDescription.h"
#include "mdesc/Render.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace rmd;

TEST(ReservationTable, InsertSortedAndDeduplicated) {
  ReservationTable T;
  T.addUsage(3, 5);
  T.addUsage(1, 0);
  T.addUsage(3, 5); // duplicate
  T.addUsage(1, 2);
  ASSERT_EQ(T.usageCount(), 3u);
  EXPECT_EQ(T.usages()[0], (ResourceUsage{1, 0}));
  EXPECT_EQ(T.usages()[1], (ResourceUsage{1, 2}));
  EXPECT_EQ(T.usages()[2], (ResourceUsage{3, 5}));
}

TEST(ReservationTable, RangeAndQueries) {
  ReservationTable T;
  T.addUsageRange(2, 3, 6);
  EXPECT_EQ(T.usageCount(), 4u);
  EXPECT_TRUE(T.uses(2, 3));
  EXPECT_TRUE(T.uses(2, 6));
  EXPECT_FALSE(T.uses(2, 7));
  EXPECT_FALSE(T.uses(1, 3));
  EXPECT_EQ(T.length(), 7);
  EXPECT_EQ(T.usageSet(2), (std::vector<int>{3, 4, 5, 6}));
  EXPECT_TRUE(T.usageSet(0).empty());
  EXPECT_EQ(T.resourceBound(), 3u);
}

TEST(ReservationTable, EmptyTable) {
  ReservationTable T;
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.length(), 0);
  EXPECT_EQ(T.resourceBound(), 0u);
}

TEST(ReservationTable, ShiftAndReverse) {
  ReservationTable T;
  T.addUsage(0, 0);
  T.addUsage(1, 2);
  ReservationTable S = T.shifted(3);
  EXPECT_TRUE(S.uses(0, 3));
  EXPECT_TRUE(S.uses(1, 5));
  EXPECT_EQ(S.usageCount(), 2u);

  ReservationTable R = T.reversed();
  // length 3: cycle c -> 2 - c.
  EXPECT_TRUE(R.uses(0, 2));
  EXPECT_TRUE(R.uses(1, 0));
  // Double reversal is the identity.
  EXPECT_EQ(R.reversed(), T);
}

TEST(ReservationTable, ConstructorNormalizes) {
  ReservationTable T({{2, 1}, {0, 0}, {2, 1}});
  EXPECT_EQ(T.usageCount(), 2u);
  EXPECT_EQ(T.usages()[0], (ResourceUsage{0, 0}));
}

TEST(MachineDescription, LookupsAndCounts) {
  MachineDescription MD("m");
  ResourceId R0 = MD.addResource("alpha");
  MD.addResource("beta");
  ReservationTable T;
  T.addUsage(R0, 0);
  OpId Op = MD.addOperation("op1", T);
  EXPECT_EQ(MD.numResources(), 2u);
  EXPECT_EQ(MD.numOperations(), 1u);
  EXPECT_EQ(MD.findResource("beta"), 1u);
  EXPECT_EQ(MD.findResource("gamma"), MD.numResources());
  EXPECT_EQ(MD.findOperation("op1"), Op);
  EXPECT_EQ(MD.findOperation("nope"), MD.numOperations());
  EXPECT_TRUE(MD.isExpanded());
  EXPECT_EQ(MD.totalUsages(), 1u);
}

TEST(MachineDescription, ValidateCatchesProblems) {
  MachineDescription MD("bad");
  MD.addResource("r");
  MD.addResource("r"); // duplicate name
  ReservationTable T;
  T.addUsage(9, 0); // out-of-range resource
  MD.addOperation("x", T);
  DiagnosticEngine Diags;
  EXPECT_FALSE(MD.validate(Diags));
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(MachineDescription, ValidateAcceptsBuiltins) {
  for (const MachineDescription &MD :
       {makeFig1Machine(), makeCydra5().MD, makeAlpha21064().MD,
        makeMipsR3000().MD, makeToyVliw().MD, makePlayDoh().MD}) {
    DiagnosticEngine Diags;
    EXPECT_TRUE(MD.validate(Diags)) << MD.name();
  }
}

TEST(ExpandAlternatives, FlattensAndMapsBack) {
  MachineModel Toy = makeToyVliw();
  EXPECT_FALSE(Toy.MD.isExpanded());
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  EXPECT_TRUE(EM.Flat.isExpanded());

  // alu (2 alts), load, store, mul, br (2 alts) -> 7 flat operations.
  EXPECT_EQ(EM.Flat.numOperations(), 7u);
  ASSERT_EQ(EM.Groups.size(), 5u);
  EXPECT_EQ(EM.Groups[0].size(), 2u);
  EXPECT_EQ(EM.Groups[1].size(), 1u);

  // Group mapping is consistent.
  for (size_t G = 0; G < EM.Groups.size(); ++G)
    for (size_t A = 0; A < EM.Groups[G].size(); ++A) {
      OpId Flat = EM.Groups[G][A];
      EXPECT_EQ(EM.GroupOf[Flat], G);
      EXPECT_EQ(EM.AlternativeIndexOf[Flat], A);
    }

  // Alternative operations carry the original tables.
  EXPECT_EQ(EM.Flat.operation(EM.Groups[0][1]).table(),
            Toy.MD.operation(0).Alternatives[1]);
  // Multi-alternative names get suffixes; singles keep their name.
  EXPECT_EQ(EM.Flat.operation(EM.Groups[0][0]).Name, "alu@0");
  EXPECT_EQ(EM.Flat.operation(EM.Groups[1][0]).Name, "load");
}

TEST(ExpandAlternatives, IdentityOnExpandedMachine) {
  MachineDescription Fig1 = makeFig1Machine();
  ExpandedMachine EM = expandAlternatives(Fig1);
  EXPECT_EQ(EM.Flat.numOperations(), Fig1.numOperations());
  EXPECT_EQ(EM.Flat.operation(0).table(), Fig1.operation(0).table());
}

TEST(Render, TableShowsUsages) {
  MachineDescription MD = makeFig1Machine();
  std::ostringstream OS;
  renderTable(OS, MD, MD.operation(1).table());
  std::string Out = OS.str();
  // B uses r1 at cycle 0 and r3 for cycles 2..5.
  EXPECT_NE(Out.find("r1"), std::string::npos);
  EXPECT_NE(Out.find("X X X X"), std::string::npos);
  EXPECT_EQ(Out.find("r0"), std::string::npos); // unused row omitted
}

TEST(Render, MachineSummary) {
  std::ostringstream OS;
  renderSummary(OS, makeFig1Machine());
  EXPECT_EQ(OS.str(), "fig1: 5 resources, 2 operations, 11 usages\n");
}

TEST(MachineModels, MetadataSizesMatch) {
  for (const MachineModel &M : {makeCydra5(), makeAlpha21064(),
                                makeMipsR3000(), makeToyVliw(),
                                makePlayDoh()}) {
    EXPECT_EQ(M.Latency.size(), M.MD.numOperations()) << M.MD.name();
    EXPECT_EQ(M.Role.size(), M.MD.numOperations()) << M.MD.name();
    EXPECT_FALSE(M.operationsWithRole(OpRole::Load).empty()) << M.MD.name();
    EXPECT_FALSE(M.operationsWithRole(OpRole::Branch).empty()) << M.MD.name();
  }
}
