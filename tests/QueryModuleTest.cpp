//===- tests/QueryModuleTest.cpp - Contention query module tests ----------===//

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

using namespace rmd;

namespace {

/// The Figure 1 machine and its op ids.
struct Fig1 {
  MachineDescription MD = makeFig1Machine();
  OpId A = MD.findOperation("A");
  OpId B = MD.findOperation("B");
};

} // namespace

TEST(DiscreteQuery, CheckAssignFreeRoundTrip) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::linear());

  EXPECT_TRUE(Q.check(F.A, 0));
  Q.assign(F.A, 0, 1);
  // F(B,A) = {1}: B one cycle after A conflicts; 0 and 2 cycles are fine.
  EXPECT_FALSE(Q.check(F.B, 1));
  EXPECT_TRUE(Q.check(F.B, 0));
  EXPECT_TRUE(Q.check(F.B, 2));
  // A conflicts with itself only at distance 0.
  EXPECT_FALSE(Q.check(F.A, 0));
  EXPECT_TRUE(Q.check(F.A, 1));

  Q.free(F.A, 0, 1);
  EXPECT_TRUE(Q.check(F.B, 1));
  EXPECT_TRUE(Q.check(F.A, 0));
}

TEST(DiscreteQuery, WorkUnitAccounting) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::linear());
  Q.check(F.B, 0); // clean table: every usage tested
  EXPECT_EQ(Q.counters().CheckCalls, 1u);
  EXPECT_EQ(Q.counters().CheckUnits,
            F.MD.operation(F.B).table().usageCount());

  Q.assign(F.B, 0, 7);
  EXPECT_EQ(Q.counters().AssignUnits,
            F.MD.operation(F.B).table().usageCount());

  // B against itself at distance 0 hits the very first usage.
  uint64_t Before = Q.counters().CheckUnits;
  EXPECT_FALSE(Q.check(F.B, 0));
  EXPECT_EQ(Q.counters().CheckUnits, Before + 1);
}

TEST(DiscreteQuery, AssignAndFreeEvicts) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::linear());
  Q.assign(F.A, 0, 1);

  std::vector<InstanceId> Evicted;
  Q.assignAndFree(F.B, 1, 2, Evicted); // conflicts with A@0
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_EQ(Evicted[0], 1);

  // All of A's resources are released, B's are held.
  EXPECT_TRUE(Q.check(F.A, 3));
  EXPECT_FALSE(Q.check(F.B, 1));
  Q.free(F.B, 1, 2);
  EXPECT_TRUE(Q.check(F.B, 1));
}

TEST(DiscreteQuery, AssignAndFreeNoEvictionOnFreeSlot) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::linear());
  std::vector<InstanceId> Evicted;
  Q.assignAndFree(F.A, 0, 1, Evicted);
  EXPECT_TRUE(Evicted.empty());
}

TEST(DiscreteQuery, ModuloWrapsAround) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::modulo(5));
  Q.assign(F.A, 0, 1);
  // A@0 and A@5 share every MRT slot at II=5.
  EXPECT_FALSE(Q.check(F.A, 5));
  EXPECT_FALSE(Q.check(F.A, -5));
  EXPECT_TRUE(Q.check(F.A, 6));
}

TEST(DiscreteQuery, ModuloSelfConflict) {
  Fig1 F;
  // B uses r3 at cycles 2..5: at II=2, cycles 2 and 4 collide.
  EXPECT_TRUE(hasModuloSelfConflict(F.MD.operation(F.B).table(), 2));
  EXPECT_FALSE(hasModuloSelfConflict(F.MD.operation(F.B).table(), 7));
  DiscreteQueryModule Q(F.MD, QueryConfig::modulo(2));
  EXPECT_FALSE(Q.check(F.B, 0));
  EXPECT_FALSE(Q.check(F.B, 1));
}

TEST(DiscreteQuery, BoundaryConditionsNegativeCycles) {
  Fig1 F;
  // Dangling requirement: a B issued 3 cycles before block entry still
  // holds r3 in cycles -1..2 and r4 in 3..4.
  DiscreteQueryModule Q(F.MD, QueryConfig::linear(-8));
  Q.assign(F.B, -3, 1);
  EXPECT_FALSE(Q.check(F.B, -3 + 1)); // overlaps the dangling B
  EXPECT_TRUE(Q.check(F.A, -2));
  EXPECT_FALSE(Q.check(F.B, -2));
}

TEST(DiscreteQuery, SnapshotRestoreRoundTrip) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::modulo(7));
  Q.assign(F.A, 0, 1);
  DiscreteQueryModule::Snapshot S = Q.snapshot();

  // Mutate: evict A via a forced B, add another A.
  std::vector<InstanceId> Evicted;
  Q.assignAndFree(F.B, 1, 2, Evicted);
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_TRUE(Q.check(F.A, 3));

  // Restore: the pre-mutation answers return exactly.
  Q.restore(S);
  EXPECT_FALSE(Q.check(F.A, 0)); // A@0 is scheduled again
  EXPECT_FALSE(Q.check(F.B, 1)); // and blocks B@1 as before
  EXPECT_TRUE(Q.check(F.B, 2));
  // The restored instance is live and freeable.
  Q.free(F.A, 0, 1);
  EXPECT_TRUE(Q.check(F.B, 1));
}

TEST(DiscreteQuery, OccupancyRendering) {
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::linear());
  Q.assign(F.A, 1, 42);
  std::ostringstream OS;
  Q.renderOccupancy(OS, 0, 4);
  std::string Out = OS.str();
  // A@1 uses r0@1, r1@2, r2@3: owner 42 appears; untouched cells are '.'.
  EXPECT_NE(Out.find("42"), std::string::npos);
  EXPECT_NE(Out.find("r0"), std::string::npos);
  EXPECT_NE(Out.find("."), std::string::npos);
  // Three reserved cells => exactly three owner mentions.
  size_t Mentions = 0;
  for (size_t Pos = Out.find("42"); Pos != std::string::npos;
       Pos = Out.find("42", Pos + 1))
    ++Mentions;
  EXPECT_EQ(Mentions, 3u);
}

TEST(QueryModule, CheckWithAlternatives) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DiscreteQueryModule Q(EM.Flat, QueryConfig::linear());

  const std::vector<OpId> &AluAlts = EM.Groups[0];
  ASSERT_EQ(AluAlts.size(), 2u);
  // Occupy slot 0's ALU path at cycle 0. Alternative 1 is also blocked at
  // cycle 0 (shared writeback bus at cycle 1), so no alternative fits.
  Q.assign(AluAlts[0], 0, 1);
  EXPECT_EQ(Q.checkWithAlternatives(AluAlts, 0), -1);
  EXPECT_EQ(Q.checkWithAlternatives(AluAlts, 2), 0);
  // With slot 0 taken at cycle 2, the shared bus blocks alternative 1 too.
  Q.assign(AluAlts[0], 2, 2);
  EXPECT_EQ(Q.checkWithAlternatives(AluAlts, 2), -1);
  // One cycle later both the slot and the bus are free again.
  EXPECT_EQ(Q.checkWithAlternatives(AluAlts, 3), 0);
}

TEST(BitvectorQuery, CheckWithAlternativesUnionFastPath) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  QueryConfig Config = QueryConfig::linear();
  Config.UnionAlternativeCheck = true;
  BitvectorQueryModule QB(EM.Flat, Config);
  DiscreteQueryModule QD(EM.Flat, QueryConfig::linear());

  const std::vector<OpId> &AluAlts = EM.Groups[0];
  ASSERT_EQ(AluAlts.size(), 2u);

  // Empty table: the union pass answers with a single call.
  EXPECT_EQ(QB.checkWithAlternatives(AluAlts, 0), 0);
  EXPECT_EQ(QB.counters().CheckCalls, 1u);

  // Drive both modules through mixed traffic; answers must agree at every
  // cycle even when the union path falls back.
  RNG R(5);
  InstanceId Next = 0;
  for (int Step = 0; Step < 300; ++Step) {
    int Cycle = static_cast<int>(R.nextBelow(24));
    const std::vector<OpId> &Group =
        EM.Groups[R.nextBelow(EM.Groups.size())];
    int WantB = QB.checkWithAlternatives(Group, Cycle);
    int WantD = QD.checkWithAlternatives(Group, Cycle);
    ASSERT_EQ(WantB, WantD) << "step " << Step;
    if (WantB >= 0 && R.nextChance(1, 2)) {
      InstanceId Id = Next++;
      QB.assign(Group[WantB], Cycle, Id);
      QD.assign(Group[WantD], Cycle, Id);
    }
  }
}

TEST(BitvectorQuery, UnionFastPathBillsOneCallOnlyOnSuccess) {
  // Regression test for the Table 6 accounting skew: the union pass used
  // to bill a check call unconditionally, so a conflicting union-mode
  // query cost 1 + N calls instead of the N fallback calls that were
  // actually answered. A successful union pass is exactly one call; a
  // conflicting one bills only the per-alternative fallback.
  MachineDescription MD("two-port");
  ResourceId R0 = MD.addResource("p0");
  ResourceId R1 = MD.addResource("p1");
  ReservationTable T0, T1;
  T0.addUsage(R0, 0);
  T1.addUsage(R1, 0);
  MD.addOperation("x", {T0, T1});
  ExpandedMachine EM = expandAlternatives(MD);
  const std::vector<OpId> &G = EM.Groups[0];
  ASSERT_EQ(G.size(), 2u);

  QueryConfig Config = QueryConfig::linear();
  Config.UnionAlternativeCheck = true;
  BitvectorQueryModule Q(EM.Flat, Config);

  // Clean table: the union answers alone.
  EXPECT_EQ(Q.checkWithAlternatives(G, 0), 0);
  EXPECT_EQ(Q.counters().CheckCalls, 1u);

  // p0 taken: the union mask conflicts, but alternative 1 is free. The
  // fallback checks alternative 0 (conflict) then 1 (free): two calls,
  // with nothing extra for the failed union pass.
  Q.assign(G[0], 0, 1);
  uint64_t UnitsBefore = Q.counters().CheckUnits;
  EXPECT_EQ(Q.checkWithAlternatives(G, 0), 1);
  EXPECT_EQ(Q.counters().CheckCalls, 3u);
  // The union scan's words are still billed as units: work done is work
  // done, successful or not.
  EXPECT_GT(Q.counters().CheckUnits, UnitsBefore);

  // Both ports taken: full conflict still bills exactly the two fallback
  // calls.
  Q.assign(G[1], 0, 2);
  EXPECT_EQ(Q.checkWithAlternatives(G, 0), -1);
  EXPECT_EQ(Q.counters().CheckCalls, 5u);
}

TEST(DiscreteQuery, SnapshotRestoresWorkCounters) {
  // Snapshots capture the work counters, so restoring a snapshot also
  // rewinds the accounting: work done on an abandoned speculative branch
  // is not billed to the run (callers that want to keep it can
  // accumulate() the pre-restore counters).
  Fig1 F;
  DiscreteQueryModule Q(F.MD, QueryConfig::linear());
  Q.check(F.A, 0);
  Q.assign(F.A, 0, 1);
  WorkCounters AtSnapshot = Q.counters();
  DiscreteQueryModule::Snapshot S = Q.snapshot();

  // A speculative branch that gets abandoned.
  Q.check(F.B, 1);
  std::vector<InstanceId> Evicted;
  Q.assignAndFree(F.B, 1, 2, Evicted);
  EXPECT_GT(Q.counters().CheckCalls, AtSnapshot.CheckCalls);
  EXPECT_GT(Q.counters().AssignFreeCalls, AtSnapshot.AssignFreeCalls);

  Q.restore(S);
  EXPECT_EQ(Q.counters().CheckCalls, AtSnapshot.CheckCalls);
  EXPECT_EQ(Q.counters().CheckUnits, AtSnapshot.CheckUnits);
  EXPECT_EQ(Q.counters().AssignCalls, AtSnapshot.AssignCalls);
  EXPECT_EQ(Q.counters().AssignFreeCalls, AtSnapshot.AssignFreeCalls);
  EXPECT_EQ(Q.counters().totalUnits(), AtSnapshot.totalUnits());

  // Accounting resumes from the snapshot point.
  Q.check(F.A, 1);
  EXPECT_EQ(Q.counters().CheckCalls, AtSnapshot.CheckCalls + 1);
}

TEST(BitvectorQuery, MatchesPaperPackingMath) {
  Fig1 F;
  BitvectorQueryModule Q64(F.MD, QueryConfig::linear());
  EXPECT_EQ(Q64.cyclesPerWordUsed(), 12u); // 64 / 5 resources

  QueryConfig C32 = QueryConfig::linear();
  C32.WordBits = 32;
  BitvectorQueryModule Q32(F.MD, C32);
  EXPECT_EQ(Q32.cyclesPerWordUsed(), 6u);
}

TEST(BitvectorQuery, CheckCountsWordsNotUsages) {
  Fig1 F;
  BitvectorQueryModule Q(F.MD, QueryConfig::linear());
  // B spans 8 cycles; with k=12 every usage fits one word at alignment 0.
  Q.check(F.B, 0);
  EXPECT_EQ(Q.counters().CheckUnits, 1u);
}

// Cross-representation property: the bitvector module must answer exactly
// like the discrete module under an arbitrary op/cycle workload, in linear
// and modulo modes and at 32/64-bit words.
class QueryEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(QueryEquivalence, RandomTraffic) {
  auto [MachineIdx, Mode, WordBits] = GetParam();
  MachineModel Models[] = {makeToyVliw(), makeMipsR3000(), makeAlpha21064()};
  MachineDescription Flat =
      expandAlternatives(Models[MachineIdx].MD).Flat;

  QueryConfig Config = Mode == 0 ? QueryConfig::linear() :
                                   QueryConfig::modulo(Mode);
  Config.WordBits = WordBits;
  DiscreteQueryModule Discrete(Flat, Config);
  BitvectorQueryModule Bitvector(Flat, Config);

  RNG R(MachineIdx * 1000 + Mode * 10 + WordBits);
  std::vector<std::pair<OpId, int>> Scheduled; // (op, cycle) by instance
  InstanceId NextId = 0;

  for (int Step = 0; Step < 800; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int Cycle = static_cast<int>(R.nextBelow(40));
    bool DiscreteOk = Discrete.check(Op, Cycle);
    bool BitvectorOk = Bitvector.check(Op, Cycle);
    ASSERT_EQ(DiscreteOk, BitvectorOk)
        << "op=" << Op << " cycle=" << Cycle << " step=" << Step;
    if (DiscreteOk && R.nextChance(3, 4)) {
      InstanceId Id = NextId++;
      Discrete.assign(Op, Cycle, Id);
      Bitvector.assign(Op, Cycle, Id);
      Scheduled.push_back({Op, Cycle});
    } else if (!Scheduled.empty() && R.nextChance(1, 3)) {
      // Free the most recently scheduled instance from both modules.
      InstanceId Id = NextId - 1;
      auto [FOp, FCycle] = Scheduled.back();
      Scheduled.pop_back();
      --NextId;
      Discrete.free(FOp, FCycle, Id);
      Bitvector.free(FOp, FCycle, Id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, QueryEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 7, 13), // linear, II=7, II=13
                       ::testing::Values(32u, 64u)));

TEST(BitvectorQuery, AssignAndFreeTransition) {
  Fig1 F;
  BitvectorQueryModule Q(F.MD, QueryConfig::linear());
  EXPECT_FALSE(Q.inUpdateMode());

  std::vector<InstanceId> Evicted;
  Q.assignAndFree(F.A, 0, 1, Evicted);
  EXPECT_TRUE(Evicted.empty());
  EXPECT_FALSE(Q.inUpdateMode()); // optimistic: no conflict yet

  Q.assignAndFree(F.B, 1, 2, Evicted); // conflicts with A@0
  EXPECT_TRUE(Q.inUpdateMode());
  EXPECT_GT(Q.counters().TransitionUnits, 0u);
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_EQ(Evicted[0], 1);

  // Post-transition state must equal the discrete module's.
  EXPECT_TRUE(Q.check(F.A, 3));
  EXPECT_FALSE(Q.check(F.B, 1));
  Q.free(F.B, 1, 2);
  EXPECT_TRUE(Q.check(F.B, 1));
}

TEST(BitvectorQuery, EvictionAgreesWithDiscrete) {
  // Drive both modules through identical assignAndFree traffic and demand
  // identical eviction sets and final check answers.
  MachineDescription Flat = expandAlternatives(makeToyVliw().MD).Flat;
  DiscreteQueryModule D(Flat, QueryConfig::modulo(6));
  BitvectorQueryModule B(Flat, QueryConfig::modulo(6));

  RNG R(99);
  InstanceId NextId = 0;
  std::vector<bool> Live;
  std::vector<std::pair<OpId, int>> Info;

  for (int Step = 0; Step < 300; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int Cycle = static_cast<int>(R.nextBelow(12));
    if (hasModuloSelfConflict(Flat.operation(Op).table(), 6))
      continue;
    std::vector<InstanceId> EvictedD, EvictedB;
    InstanceId Id = NextId++;
    D.assignAndFree(Op, Cycle, Id, EvictedD);
    B.assignAndFree(Op, Cycle, Id, EvictedB);
    std::sort(EvictedD.begin(), EvictedD.end());
    std::sort(EvictedB.begin(), EvictedB.end());
    ASSERT_EQ(EvictedD, EvictedB) << "step " << Step;
    Live.push_back(true);
    Info.push_back({Op, Cycle});
    for (InstanceId V : EvictedD)
      Live[static_cast<size_t>(V)] = false;
    // Occasionally free a live instance.
    if (R.nextChance(1, 4)) {
      for (size_t I = 0; I < Live.size(); ++I)
        if (Live[I]) {
          D.free(Info[I].first, Info[I].second,
                 static_cast<InstanceId>(I));
          B.free(Info[I].first, Info[I].second,
                 static_cast<InstanceId>(I));
          Live[I] = false;
          break;
        }
    }
    for (OpId Check = 0; Check < Flat.numOperations(); ++Check)
      for (int T = 0; T < 6; ++T)
        ASSERT_EQ(D.check(Check, T), B.check(Check, T))
            << "divergence at step " << Step;
  }
}

TEST(BitvectorQuery, ModuloEvictionCascadeAcrossTwoTransitions) {
  // An eviction cascade in modulo mode, run through the bitvector
  // module's full optimistic -> update lifecycle twice: storm until the
  // first conflicting assign&free forces the transition, keep storming in
  // update mode, reset() (back to optimistic), and storm through a second
  // transition. At every step the discrete module must report the
  // identical eviction set, and the MRTs must agree cell by cell.
  MachineDescription Flat = expandAlternatives(makeToyVliw().MD).Flat;
  const int II = 5;
  DiscreteQueryModule D(Flat, QueryConfig::modulo(II));
  BitvectorQueryModule B(Flat, QueryConfig::modulo(II));

  std::vector<OpId> Placeable;
  for (OpId Op = 0; Op < Flat.numOperations(); ++Op)
    if (!hasModuloSelfConflict(Flat.operation(Op).table(), II))
      Placeable.push_back(Op);
  ASSERT_GE(Placeable.size(), 2u);

  RNG R(1331);
  InstanceId NextId = 0;
  unsigned Transitions = 0;
  for (int Round = 0; Round < 2; ++Round) {
    EXPECT_FALSE(B.inUpdateMode()) << "round " << Round;
    bool Transitioned = false;
    for (int Step = 0; Step < 120; ++Step) {
      OpId Op = Placeable[R.nextBelow(Placeable.size())];
      // Clustered cycles (also negative: modulo wrap) force dense
      // contention so assign&free cascades through multiple victims.
      int Cycle = static_cast<int>(R.nextBelow(2 * II)) - II;
      std::vector<InstanceId> EvictedD, EvictedB;
      InstanceId Id = NextId++;
      D.assignAndFree(Op, Cycle, Id, EvictedD);
      B.assignAndFree(Op, Cycle, Id, EvictedB);
      std::sort(EvictedD.begin(), EvictedD.end());
      std::sort(EvictedB.begin(), EvictedB.end());
      ASSERT_EQ(EvictedD, EvictedB) << "round " << Round << " step " << Step;
      if (!Transitioned && B.inUpdateMode()) {
        Transitioned = true;
        ++Transitions;
        EXPECT_GT(B.counters().TransitionUnits, 0u);
      }
      for (OpId Probe = 0; Probe < Flat.numOperations(); ++Probe)
        for (int T = 0; T < II; ++T)
          ASSERT_EQ(D.check(Probe, T), B.check(Probe, T))
              << "round " << Round << " step " << Step;
    }
    EXPECT_TRUE(Transitioned) << "round " << Round;
    D.reset();
    B.reset();
  }
  EXPECT_EQ(Transitions, 2u);
}

TEST(QueryModule, ReducedDescriptionAnswersIdentically) {
  // The paper's end-to-end guarantee at the query level: original and
  // reduced descriptions answer every query identically.
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  MachineDescription Reduced = reduceMachine(Flat).Reduced;

  DiscreteQueryModule QO(Flat, QueryConfig::linear());
  DiscreteQueryModule QR(Reduced, QueryConfig::linear());

  RNG R(4242);
  InstanceId NextId = 0;
  for (int Step = 0; Step < 2000; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int Cycle = static_cast<int>(R.nextBelow(50));
    bool Ok = QO.check(Op, Cycle);
    ASSERT_EQ(Ok, QR.check(Op, Cycle))
        << Flat.operation(Op).Name << "@" << Cycle << " step " << Step;
    if (Ok && R.nextChance(1, 2)) {
      InstanceId Id = NextId++;
      QO.assign(Op, Cycle, Id);
      QR.assign(Op, Cycle, Id);
    }
  }
}
