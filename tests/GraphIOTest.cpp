//===- tests/GraphIOTest.cpp - Loop-graph format tests --------------------===//

#include "sched/GraphIO.h"
#include "sched/MII.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

void expectGraphError(const std::string &Text, const std::string &Needle) {
  MachineModel Cydra = makeCydra5();
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseLoopGraph(Text, Cydra, Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
  bool Found = false;
  for (const Diagnostic &D : Diags.diagnostics())
    Found |= D.Message.find(Needle) != std::string::npos;
  EXPECT_TRUE(Found) << "no diagnostic mentioning '" << Needle << "'";
}

} // namespace

TEST(GraphIO, ParsesLoopWithDefaultsAndOverrides) {
  MachineModel Cydra = makeCydra5();
  DiagnosticEngine Diags;
  std::optional<DepGraph> G = parseLoopGraph(R"(
    loop t {
      a: load;
      b: fadd.s;
      c: store;
      edge a -> b;                  # delay defaults to load's latency
      edge b -> c delay 9;
      edge b -> b distance 1;       # reduction recurrence
      edge c -> a delay 1 distance 2;
    }
  )",
                                             Cydra, Diags);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->numNodes(), 3u);
  ASSERT_EQ(G->numEdges(), 4u);
  EXPECT_EQ(G->nodeName(0), "a");
  EXPECT_EQ(Cydra.MD.operation(G->opOf(1)).Name, "fadd.s");
  EXPECT_EQ(G->edges()[0].Delay, Cydra.Latency[G->opOf(0)]);
  EXPECT_EQ(G->edges()[1].Delay, 9);
  EXPECT_EQ(G->edges()[2].Distance, 1);
  EXPECT_EQ(G->edges()[2].Delay, Cydra.Latency[G->opOf(1)]);
  EXPECT_EQ(G->edges()[3].Delay, 1);
  EXPECT_EQ(G->edges()[3].Distance, 2);

  // Recurrences: b->b needs II >= 6 (fadd latency); the a->b->c->a cycle
  // needs 2*II >= 5+9+1, i.e. II >= 8, which dominates.
  EXPECT_EQ(computeRecMII(*G), 8);
}

TEST(GraphIO, RoundTrips) {
  MachineModel Mips = makeMipsR3000();
  DiagnosticEngine Diags;
  std::optional<DepGraph> G = parseLoopGraph(R"(
    loop rt {
      x: mult;
      y: add.s;
      edge x -> y delay 12;
      edge y -> y delay 3 distance 1;
    }
  )",
                                             Mips, Diags);
  ASSERT_TRUE(G.has_value());

  std::string Text = writeLoopGraph(*G, Mips);
  DiagnosticEngine Diags2;
  std::optional<DepGraph> Back = parseLoopGraph(Text, Mips, Diags2);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->numNodes(), G->numNodes());
  EXPECT_EQ(Back->numEdges(), G->numEdges());
  for (size_t E = 0; E < G->numEdges(); ++E) {
    EXPECT_EQ(Back->edges()[E].Delay, G->edges()[E].Delay);
    EXPECT_EQ(Back->edges()[E].Distance, G->edges()[E].Distance);
  }
  for (NodeId N = 0; N < G->numNodes(); ++N)
    EXPECT_EQ(Back->nodeName(N), G->nodeName(N));
}

TEST(GraphIO, Errors) {
  expectGraphError("loop t { a: warpcore; }", "no operation");
  expectGraphError("loop t { a: load; a: load; }", "duplicate node");
  expectGraphError("loop t { a: load; edge a -> zz; }", "unknown node");
  expectGraphError("loop t { }", "no operations");
  expectGraphError("loop t { a: load; edge a -> a distance 0 junk; }",
                   "expected 'delay', 'distance' or ';'");
  expectGraphError("loop t { a: load; } extra", "trailing input");
}
