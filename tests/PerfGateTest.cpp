//===- tests/PerfGateTest.cpp - Perf-regression gate ----------------------===//
//
// The `perf` ctest label: replays the pinned mini-corpus, writes the
// BENCH_pr7.json document at the repository root, and fails when query
// throughput or reduction time regresses past the tolerance against the
// checked-in baseline (bench/perf_baseline.json). The baseline carries
// headroom (see perf_gate --write-baseline), so a failure here means a
// real slowdown, not scheduler noise.
//
// Wall-clock assertions are skipped under sanitizers (they change the
// constant factors by an order of magnitude); the structural assertions
// still run. Registered RUN_SERIAL so parallel ctest neighbours don't
// steal cycles from the measurement.
//
//===----------------------------------------------------------------------===//

#include "PerfGate.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace rmd::bench;

#ifndef RMD_SOURCE_DIR
#define RMD_SOURCE_DIR "."
#endif

namespace {

bool underSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

const std::vector<PerfEntry> &measuredOnce() {
  static std::vector<PerfEntry> Entries = measurePerfCorpus(/*Repeats=*/3);
  return Entries;
}

} // namespace

TEST(PerfGate, CorpusCoverageAndSanity) {
  const std::vector<PerfEntry> &Entries = measuredOnce();
  ASSERT_EQ(Entries.size(), perfCorpus().size());
  ASSERT_EQ(Entries.size(), 7u);
  for (size_t I = 0; I < Entries.size(); ++I) {
    EXPECT_EQ(Entries[I].Machine, perfCorpus()[I]);
    EXPECT_GT(Entries[I].ReduceMs, 0.0) << Entries[I].Machine;
    EXPECT_GT(Entries[I].DiscreteMqps, 0.0) << Entries[I].Machine;
    EXPECT_GT(Entries[I].BitvectorMqps, 0.0) << Entries[I].Machine;
  }
}

TEST(PerfGate, JsonRoundTrip) {
  const std::vector<PerfEntry> &Entries = measuredOnce();
  std::stringstream SS;
  writeBenchJson(SS, Entries, "PerfGateTest");
  EXPECT_NE(SS.str().find("\"schema\": \"rmd-bench-v1\""),
            std::string::npos);

  std::vector<PerfEntry> Back;
  ASSERT_TRUE(loadBenchJson(SS, Back));
  ASSERT_EQ(Back.size(), Entries.size());
  for (size_t I = 0; I < Entries.size(); ++I) {
    EXPECT_EQ(Back[I].Machine, Entries[I].Machine);
    EXPECT_NEAR(Back[I].ReduceMs, Entries[I].ReduceMs, 1e-5);
    EXPECT_NEAR(Back[I].DiscreteMqps, Entries[I].DiscreteMqps, 1e-5);
    EXPECT_NEAR(Back[I].BitvectorMqps, Entries[I].BitvectorMqps, 1e-5);
  }
}

TEST(PerfGate, ComparePerfFlagsRegressions) {
  std::vector<PerfEntry> Baseline = {{"m", 10.0, 50.0, 80.0}};
  // Within tolerance: no report.
  EXPECT_TRUE(comparePerf(Baseline, {{"m", 12.0, 45.0, 70.0}}, 0.25).empty());
  // Each metric past the band trips individually.
  auto R = comparePerf(Baseline, {{"m", 13.0, 50.0, 80.0}}, 0.25);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "reduce_ms");
  R = comparePerf(Baseline, {{"m", 10.0, 39.0, 80.0}}, 0.25);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "query_mqps_discrete");
  R = comparePerf(Baseline, {{"m", 10.0, 50.0, 63.0}}, 0.25);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Metric, "query_mqps_bitvector");
  // Machines missing from the current run are ignored (corpus growth).
  EXPECT_TRUE(comparePerf(Baseline, {{"other", 1.0, 1.0, 1.0}}, 0.25).empty());
}

TEST(PerfGate, WritesBenchDocumentAtRepoRoot) {
  const std::vector<PerfEntry> &Entries = measuredOnce();
  std::string Path = std::string(RMD_SOURCE_DIR) + "/BENCH_pr7.json";
  {
    std::ofstream Out(Path, std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    writeBenchJson(Out, Entries, "PerfGateTest");
  }
  std::ifstream In(Path);
  std::vector<PerfEntry> Back;
  ASSERT_TRUE(loadBenchJson(In, Back));
  EXPECT_EQ(Back.size(), 7u);
}

TEST(PerfGate, NoRegressionAgainstBaseline) {
  if (underSanitizer())
    GTEST_SKIP() << "wall-clock gate is meaningless under sanitizers";
  std::string Path =
      std::string(RMD_SOURCE_DIR) + "/bench/perf_baseline.json";
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing baseline " << Path
                         << " (regenerate with perf_gate --write-baseline)";
  std::vector<PerfEntry> Baseline;
  ASSERT_TRUE(loadBenchJson(In, Baseline));
  EXPECT_EQ(Baseline.size(), 7u);

  std::vector<PerfRegression> Regressions =
      comparePerf(Baseline, measuredOnce(), /*Tolerance=*/0.25);
  for (const PerfRegression &R : Regressions)
    ADD_FAILURE() << R.Machine << " " << R.Metric << " regressed: baseline "
                  << R.Baseline << ", current " << R.Current;
}
