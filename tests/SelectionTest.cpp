//===- tests/SelectionTest.cpp - Selection heuristic unit tests -----------===//

#include "machines/MachineModel.h"
#include "reduce/GeneratingSet.h"
#include "reduce/Metrics.h"
#include "reduce/Reduction.h"
#include "reduce/Selection.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

struct PreparedMachine {
  MachineDescription Flat;
  ForbiddenLatencyMatrix FLM{0};
  std::vector<SynthesizedResource> Pruned;
};

PreparedMachine prepare(const MachineDescription &MD) {
  PreparedMachine P{expandAlternatives(MD).Flat, ForbiddenLatencyMatrix(0),
                    {}};
  P.FLM = ForbiddenLatencyMatrix::compute(P.Flat);
  P.Pruned = pruneGeneratingSet(buildGeneratingSet(P.FLM));
  return P;
}

/// Checks that the selected usages cover every canonical latency of FLM.
void expectCovered(const PreparedMachine &P, const SelectionResult &Sel) {
  std::vector<ForbiddenLatency> Covered;
  for (size_t R = 0; R < Sel.SelectedUsages.size(); ++R) {
    const auto &Usages = Sel.SelectedUsages[R];
    for (size_t I = 0; I < Usages.size(); ++I) {
      Covered.push_back(canonicalize(Usages[I].Op, Usages[I].Op, 0));
      for (size_t J = I + 1; J < Usages.size(); ++J)
        Covered.push_back(generatedLatency(Usages[I], Usages[J]));
    }
  }
  std::sort(Covered.begin(), Covered.end());
  Covered.erase(std::unique(Covered.begin(), Covered.end()), Covered.end());
  for (const ForbiddenLatency &L : P.FLM.canonicalLatencies())
    ASSERT_TRUE(std::binary_search(Covered.begin(), Covered.end(), L))
        << "uncovered latency";
}

} // namespace

TEST(Selection, Figure1ResUses) {
  PreparedMachine P = prepare(makeFig1Machine());
  SelectionResult Sel =
      selectCover(P.FLM, P.Pruned, SelectionObjective::resUses());
  expectCovered(P, Sel);

  // Figure 1d: 2 synthesized resources; 1 usage for A and 4 for B (the
  // res-uses objective drops one redundant usage of B in the long row).
  EXPECT_EQ(Sel.numSelectedResources(), 2u);
  EXPECT_EQ(Sel.numSelectedUsages(), 5u);
}

TEST(Selection, Figure1ReducedDescription) {
  MachineDescription MD = makeFig1Machine();
  PreparedMachine P = prepare(MD);
  SelectionResult Sel =
      selectCover(P.FLM, P.Pruned, SelectionObjective::resUses());
  MachineDescription Reduced =
      buildReducedDescription(P.Flat, P.Pruned, Sel, ".r");

  EXPECT_EQ(Reduced.numResources(), 2u);
  OpId A = Reduced.findOperation("A");
  OpId B = Reduced.findOperation("B");
  EXPECT_EQ(Reduced.operation(A).table().usageCount(), 1u);
  EXPECT_EQ(Reduced.operation(B).table().usageCount(), 4u);
  EXPECT_TRUE(verifyEquivalence(P.Flat, Reduced));
}

TEST(Selection, SelectionIsSubsetOfPruned) {
  PreparedMachine P = prepare(makeMipsR3000().MD);
  SelectionResult Sel =
      selectCover(P.FLM, P.Pruned, SelectionObjective::resUses());
  ASSERT_EQ(Sel.SelectedUsages.size(), P.Pruned.size());
  for (size_t R = 0; R < P.Pruned.size(); ++R)
    for (const SynthUsage &U : Sel.SelectedUsages[R])
      EXPECT_TRUE(P.Pruned[R].contains(U));
}

TEST(Selection, WordObjectiveNeverWorseOnWords) {
  // For every machine, the end-to-end k-cycle-word reduction must give
  // average word usage <= the res-uses reduction measured at the same k
  // (reduceMachine keeps the better of the two covers, Tables 1-4 shape).
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh()}) {
    MachineDescription Flat = expandAlternatives(M.MD).Flat;
    ReductionResult Res = reduceMachine(Flat);
    unsigned K = cyclesPerWord(Res.Reduced.numResources(), 64);

    ReductionOptions WordOptions;
    WordOptions.Objective = SelectionObjective::wordUses(K);
    ReductionResult Word = reduceMachine(Flat, WordOptions);

    EXPECT_TRUE(verifyEquivalence(Flat, Word.Reduced)) << M.MD.name();
    EXPECT_LE(averageWordUsesPerOperation(Word.Reduced, K),
              averageWordUsesPerOperation(Res.Reduced, K) + 1e-9)
        << M.MD.name();
  }
}

TEST(Selection, WordUsesGrowWithK) {
  // Tables 1-4 show res usages increasing monotonically with k while word
  // usages shrink; verify the direction on the Cydra 5.
  PreparedMachine P = prepare(makeCydra5().MD);
  size_t PrevUsages = 0;
  for (unsigned K : {1u, 2u, 4u}) {
    SelectionResult Sel =
        selectCover(P.FLM, P.Pruned, SelectionObjective::wordUses(K));
    expectCovered(P, Sel);
    EXPECT_GE(Sel.numSelectedUsages(), PrevUsages) << "K=" << K;
    PrevUsages = Sel.numSelectedUsages();
  }
}

TEST(Selection, EmptyMachine) {
  MachineDescription MD("empty");
  MD.addResource("r");
  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(MD);
  std::vector<SynthesizedResource> Pruned =
      pruneGeneratingSet(buildGeneratingSet(FLM));
  SelectionResult Sel =
      selectCover(FLM, Pruned, SelectionObjective::resUses());
  EXPECT_EQ(Sel.numSelectedUsages(), 0u);
}

TEST(Metrics, WordUsageCounting) {
  ReservationTable RT;
  RT.addUsage(0, 0);
  RT.addUsage(1, 1);
  RT.addUsage(0, 5);
  // k=4, alignment 0: words {0, 1}; alignment 3: cycles 3,4,8 -> words
  // {0, 1, 2}.
  EXPECT_EQ(wordUsages(RT, 4, 0), 2u);
  EXPECT_EQ(wordUsages(RT, 4, 3), 3u);
  EXPECT_EQ(wordUsages(RT, 1, 0), 3u);
}

TEST(Metrics, CyclesPerWord) {
  EXPECT_EQ(cyclesPerWord(15, 64), 4u);
  EXPECT_EQ(cyclesPerWord(15, 32), 2u);
  EXPECT_EQ(cyclesPerWord(56, 64), 1u);
  EXPECT_EQ(cyclesPerWord(7, 64), 9u);
  EXPECT_EQ(cyclesPerWord(64, 64), 1u);
}

TEST(Metrics, Averages) {
  MachineDescription MD = makeFig1Machine();
  // A has 3 usages, B has 8: average 5.5.
  EXPECT_DOUBLE_EQ(averageResUsesPerOperation(MD), 5.5);
  EXPECT_EQ(stateBitsPerCycle(MD), 5u);
  // k=1 word usage = number of distinct used cycles: A: 3, B: 8.
  EXPECT_DOUBLE_EQ(averageWordUsesPerOperation(MD, 1), 5.5);
}
