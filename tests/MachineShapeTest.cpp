//===- tests/MachineShapeTest.cpp - Paper-shape properties ----------------===//
//
// Pins the qualitative properties the paper reports for each evaluation
// machine, so regressions in the reconstructions or the reducer that would
// silently change the experiments' story fail loudly:
//
//   - the characteristic maximum forbidden latencies (divider occupancy);
//   - substantial reduction factors in resources and usages (the original
//     descriptions deliberately carry redundant hardware rows);
//   - automaton state counts dwarfing reduced reservation tables.
//
//===----------------------------------------------------------------------===//

#include "automaton/PipelineAutomaton.h"
#include "flm/OperationClasses.h"
#include "machines/MachineModel.h"
#include "reduce/Metrics.h"
#include "reduce/Reduction.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

struct Shape {
  MachineDescription Flat;
  MachineDescription Classes;
  ForbiddenLatencyMatrix FLM{0};
  MachineDescription Reduced;
};

Shape shapeOf(const MachineDescription &MD) {
  Shape S;
  S.Flat = expandAlternatives(MD).Flat;
  ForbiddenLatencyMatrix FlatFLM = ForbiddenLatencyMatrix::compute(S.Flat);
  S.Classes = buildClassMachine(S.Flat, partitionOperationClasses(FlatFLM));
  S.FLM = ForbiddenLatencyMatrix::compute(S.Classes);
  S.Reduced = reduceMachine(S.Classes).Reduced;
  return S;
}

} // namespace

TEST(MachineShape, MipsMaxLatencyIsTheDivider) {
  // Paper: "428 forbidden latencies (all < 34)"; the 34-cycle occupancy of
  // the integer divider dominates.
  Shape S = shapeOf(makeMipsR3000().MD);
  EXPECT_EQ(S.FLM.maxAbsoluteLatency(), 33);
  EXPECT_GE(S.FLM.canonicalCount(), 150u);
}

TEST(MachineShape, AlphaMaxLatencyIsTheFpDivider) {
  // Paper: "all < 58"; the double-precision divide busies the divider
  // through cycle 58.
  Shape S = shapeOf(makeAlpha21064().MD);
  EXPECT_GE(S.FLM.maxAbsoluteLatency(), 55);
  EXPECT_LE(S.FLM.maxAbsoluteLatency(), 59);
}

TEST(MachineShape, ReductionFactorsAreSubstantial) {
  struct Expectation {
    MachineDescription MD;
    double MinResourceFactor;
    double MinUsageFactor;
  };
  std::vector<Expectation> Cases;
  Cases.push_back({makeCydra5().MD, 2.0, 1.7});
  Cases.push_back({makeAlpha21064().MD, 2.0, 1.7});
  Cases.push_back({makeMipsR3000().MD, 2.0, 1.5});

  for (const Expectation &E : Cases) {
    Shape S = shapeOf(E.MD);
    double ResourceFactor =
        static_cast<double>(S.Classes.numResources()) /
        static_cast<double>(S.Reduced.numResources());
    double UsageFactor = averageResUsesPerOperation(S.Classes) /
                         averageResUsesPerOperation(S.Reduced);
    EXPECT_GE(ResourceFactor, E.MinResourceFactor) << E.MD.name();
    EXPECT_GE(UsageFactor, E.MinUsageFactor) << E.MD.name();
    // Memory headline: the reduced reserved table needs at most ~half the
    // bits per schedule cycle.
    EXPECT_LE(2 * stateBitsPerCycle(S.Reduced), stateBitsPerCycle(S.Classes))
        << E.MD.name();
  }
}

TEST(MachineShape, RedundantRowsVanish) {
  // The deliberately redundant hardware rows (decode latches, pipeline
  // stages, divider control) must not survive reduction: the reduced
  // Cydra 5 must land near the paper's 15 synthesized resources.
  Shape S = shapeOf(makeCydra5().MD);
  EXPECT_LE(S.Reduced.numResources(), 20u);
  EXPECT_GE(S.Reduced.numResources(), 8u);
  EXPECT_GE(S.Classes.numResources(), 40u); // original stays hardware-rich
}

TEST(MachineShape, WordPackingMatchesPaperArithmetic) {
  // Section 9: a 64-bit word encodes the bitvectors of several schedule
  // cycles once the description is reduced (4 for the Cydra 5, 9 for the
  // MIPS and Alpha in the paper). Require at least 2 cycles per word after
  // reduction while the original packs fewer.
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000()}) {
    Shape S = shapeOf(M.MD);
    unsigned ReducedK = cyclesPerWord(S.Reduced.numResources(), 64);
    unsigned OriginalK = S.Classes.numResources() <= 64
                             ? cyclesPerWord(S.Classes.numResources(), 64)
                             : 1;
    EXPECT_GE(ReducedK, 2u) << M.MD.name();
    EXPECT_GT(ReducedK, OriginalK) << M.MD.name();
  }
}

TEST(MachineShape, AutomatonTablesDwarfReducedDescriptions) {
  // Section 2/6: automaton transition tables explode with machine
  // complexity while reduced reservation tables stay tiny. On the MIPS the
  // automaton needs orders of magnitude more memory than the reduced
  // description's reservation tables.
  Shape S = shapeOf(makeMipsR3000().MD);
  auto A = PipelineAutomaton::build(S.Reduced, 1u << 22);
  ASSERT_TRUE(A.has_value());
  size_t ReducedTableBytes =
      S.Reduced.totalUsages() * sizeof(ResourceUsage);
  EXPECT_GT(A->tableBytes(), 100 * ReducedTableBytes);
}

TEST(MachineShape, M88100ReducesLikeTheOthers) {
  // Mueller's machine: the redundant decode/writeback rows vanish and the
  // FP divider dominates the latency census.
  Shape S = shapeOf(makeM88100().MD);
  EXPECT_LT(S.Reduced.numResources(), S.Classes.numResources());
  EXPECT_GE(S.FLM.maxAbsoluteLatency(), 24);
  EXPECT_LE(S.FLM.maxAbsoluteLatency(), 28);
  MachineDescription Flat = expandAlternatives(makeM88100().MD).Flat;
  EXPECT_TRUE(verifyEquivalence(Flat, reduceMachine(Flat).Reduced));
}

TEST(MachineShape, PlayDohAlternativesSurviveReduction) {
  // Four-way alternatives mean the flat machine has ~4x the operations;
  // reduction must still terminate quickly and preserve the matrix (the
  // verify inside reduceMachine), and alternatives keep their distinct
  // contention behaviour (unit 0 vs unit 1 alternatives are different
  // classes).
  MachineDescription Flat = expandAlternatives(makePlayDoh().MD).Flat;
  EXPECT_GT(Flat.numOperations(), 30u);
  MachineDescription Reduced = reduceMachine(Flat).Reduced;
  EXPECT_LE(Reduced.numResources(), Flat.numResources());

  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
  OpId A0 = Flat.findOperation("iadd@0");
  OpId A2 = Flat.findOperation("iadd@2");
  ASSERT_LT(A0, Flat.numOperations());
  ASSERT_LT(A2, Flat.numOperations());
  // Same write port, different integer units: 0-latency conflict via the
  // port... iadd@0 = unit0/port0, iadd@2 = unit1/port0: they share only
  // the write port at cycle 1 -> 0 is forbidden between them.
  EXPECT_TRUE(FLM.isForbidden(A0, A2, 0));
  // iadd@0 vs iadd@3 (unit1/port1) share nothing: no constraint at all.
  OpId A3 = Flat.findOperation("iadd@3");
  EXPECT_TRUE(FLM.get(A0, A3).empty());
}

TEST(MachineShape, ClassCountsInPaperBallpark) {
  // Not exact (the original descriptions are unpublished), but the class
  // structure should be comparable: tens of classes for the Cydra, around
  // a dozen for the single-chip machines.
  Shape Cydra = shapeOf(makeCydra5().MD);
  EXPECT_GE(Cydra.Classes.numOperations(), 15u);
  EXPECT_LE(Cydra.Classes.numOperations(), 60u);

  Shape Alpha = shapeOf(makeAlpha21064().MD);
  EXPECT_GE(Alpha.Classes.numOperations(), 8u);
  EXPECT_LE(Alpha.Classes.numOperations(), 16u);

  Shape Mips = shapeOf(makeMipsR3000().MD);
  EXPECT_GE(Mips.Classes.numOperations(), 8u);
  EXPECT_LE(Mips.Classes.numOperations(), 18u);
}
