//===- tests/SimdQueryTest.cpp - SIMD kernel and tier equivalence ---------===//
///
/// The SIMD contract (query/SimdOps.h): every tier — the inline short-span
/// peels, the SSE2 kernels, the AVX2 kernels — must be bit-identical to the
/// scalar reference. Three layers pin that down:
///
///  1. Kernel sweeps: firstConflict / orInto / orIntoCheck / andNotInto
///     against naive per-word loops, over span lengths crossing every peel
///     and dispatch boundary, under every tier the host supports, with
///     guard words proving nothing outside [0, N) is touched.
///  2. Module differential: two BitvectorQueryModules over the same machine
///     driven with identical traffic, one under the scalar tier and one
///     under the best tier, must give identical answers, identical reserved
///     tables, and identical WorkCounters (the paper's Table 6 accounting
///     cannot depend on the vector width).
///  3. Schedule bit-identity: list and modulo scheduling under scalar vs
///     best tier must produce equal Time/Alternative vectors on the
///     machine-model corpus.
///
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "query/SimdOps.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ListScheduler.h"
#include "support/RNG.h"
#include "workload/LoopGenerator.h"
#include "workload/RoleGraph.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

using namespace rmd;

namespace {

/// Forces a SIMD tier for the enclosing scope and restores the previous
/// one on exit. forceTier clamps to what the build and host support, so
/// `active()` tells the caller whether the request actually took effect.
struct TierGuard {
  explicit TierGuard(simd::Tier T) : Prev(simd::forceTier(T)) {}
  ~TierGuard() { simd::forceTier(Prev); }
  simd::Tier active() const { return simd::activeTier(); }
  simd::Tier Prev;
};

/// Every tier the current build + host can actually run.
std::vector<simd::Tier> supportedTiers() {
  std::vector<simd::Tier> Tiers;
  for (simd::Tier T :
       {simd::Tier::Scalar, simd::Tier::Sse2, simd::Tier::Avx2}) {
    TierGuard G(T);
    if (G.active() == T)
      Tiers.push_back(T);
  }
  return Tiers;
}

//===----------------------------------------------------------------------===//
// Naive per-word reference semantics
//===----------------------------------------------------------------------===//

ptrdiff_t refFirstConflict(const uint64_t *W, const uint64_t *M, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (W[I] & M[I])
      return static_cast<ptrdiff_t>(I);
  return -1;
}

void refOrInto(uint64_t *W, const uint64_t *M, size_t N) {
  for (size_t I = 0; I < N; ++I)
    W[I] |= M[I];
}

uint64_t refOrIntoCheck(uint64_t *W, const uint64_t *M, size_t N) {
  uint64_t Clash = 0;
  for (size_t I = 0; I < N; ++I) {
    Clash |= W[I] & M[I];
    W[I] |= M[I];
  }
  return Clash;
}

void refAndNotInto(uint64_t *W, const uint64_t *M, size_t N) {
  for (size_t I = 0; I < N; ++I)
    W[I] &= ~M[I];
}

constexpr uint64_t GuardWord = 0xdeadbeefcafef00dull;
constexpr size_t GuardWords = 4;

/// A span of N payload words with guard sentinels on both sides. The
/// overlapping-pair peels and the vector kernels may touch payload words
/// more than once, but never the guards.
struct GuardedSpan {
  explicit GuardedSpan(size_t N)
      : N(N), Buf(N + 2 * GuardWords, GuardWord) {}

  uint64_t *data() { return Buf.data() + GuardWords; }

  void fill(RNG &R, int EmptyChancePercent) {
    for (size_t I = 0; I < N; ++I)
      data()[I] = R.nextChance(static_cast<uint64_t>(EmptyChancePercent), 100)
                      ? 0
                      : R.next();
  }

  bool guardsIntact() const {
    for (size_t I = 0; I < GuardWords; ++I)
      if (Buf[I] != GuardWord || Buf[Buf.size() - 1 - I] != GuardWord)
        return false;
    return true;
  }

  size_t N;
  std::vector<uint64_t> Buf;
};

} // namespace

//===----------------------------------------------------------------------===//
// 1. Kernel sweeps vs the naive reference
//===----------------------------------------------------------------------===//

TEST(SimdKernels, SweepAllTiersAgainstReference) {
  for (simd::Tier T : supportedTiers()) {
    TierGuard G(T);
    RNG R(0x51adu + static_cast<uint64_t>(T));
    // Lengths cross every boundary: the N<=2 scalar fast paths, the
    // overlapping-pair covers at 3..8, the dispatch threshold, and vector
    // remainders around 4- and 8-word multiples.
    for (size_t N = 0; N <= 20; ++N) {
      for (int Trial = 0; Trial < 64; ++Trial) {
        GuardedSpan Words(N), Masks(N);
        // Dense words, sparse masks: conflicts happen but are not certain.
        Words.fill(R, 30);
        Masks.fill(R, 70);

        std::vector<uint64_t> RefW(Words.data(), Words.data() + N);
        // N == 0 is a real kernel input but RefW.data() may be null there,
        // and memcmp's arguments are declared nonnull (UBSAN flags the
        // call even with a zero size).
        auto SameWords = [N](const uint64_t *A, const uint64_t *B) {
          return N == 0 || std::memcmp(A, B, N * 8) == 0;
        };

        EXPECT_EQ(simd::firstConflict(Words.data(), Masks.data(), N),
                  refFirstConflict(RefW.data(), Masks.data(), N))
            << "tier " << simd::tierName(T) << " N=" << N;

        uint64_t RefClash = refOrIntoCheck(RefW.data(), Masks.data(), N);
        uint64_t GotClash = simd::orIntoCheck(Words.data(), Masks.data(), N);
        EXPECT_EQ(GotClash != 0, RefClash != 0)
            << "tier " << simd::tierName(T) << " N=" << N;
        EXPECT_TRUE(SameWords(Words.data(), RefW.data()))
            << "orIntoCheck stores, tier " << simd::tierName(T) << " N=" << N;

        refAndNotInto(RefW.data(), Masks.data(), N);
        simd::andNotInto(Words.data(), Masks.data(), N);
        EXPECT_TRUE(SameWords(Words.data(), RefW.data()))
            << "andNotInto, tier " << simd::tierName(T) << " N=" << N;

        refOrInto(RefW.data(), Masks.data(), N);
        simd::orInto(Words.data(), Masks.data(), N);
        EXPECT_TRUE(SameWords(Words.data(), RefW.data()))
            << "orInto, tier " << simd::tierName(T) << " N=" << N;

        ASSERT_TRUE(Words.guardsIntact())
            << "guard words clobbered, tier " << simd::tierName(T)
            << " N=" << N;
        ASSERT_TRUE(Masks.guardsIntact());
      }
    }
  }
}

TEST(SimdKernels, FirstConflictIndexIsExactAtEveryPosition) {
  // The index contract is what makes abort-on-first-conflict work
  // accounting reproducible, so plant exactly one conflict at each
  // position and demand the exact index back from every tier.
  for (simd::Tier T : supportedTiers()) {
    TierGuard G(T);
    for (size_t N = 1; N <= 20; ++N) {
      for (size_t Pos = 0; Pos < N; ++Pos) {
        std::vector<uint64_t> Words(N, 0), Masks(N, ~0ull);
        Words[Pos] = uint64_t(1) << (Pos % 64);
        EXPECT_EQ(static_cast<ptrdiff_t>(Pos),
                  simd::firstConflict(Words.data(), Masks.data(), N))
            << "tier " << simd::tierName(T) << " N=" << N << " pos=" << Pos;
      }
      // And the all-clear answer.
      std::vector<uint64_t> Words(N, 0), Masks(N, ~0ull);
      EXPECT_EQ(-1, simd::firstConflict(Words.data(), Masks.data(), N));
    }
  }
}

TEST(SimdKernels, DispatchedKernelsMatchReferenceDirectly) {
  // The inline wrappers peel N <= ShortSpanWords, so exercise the
  // out-of-line dispatch entry points on their own to cover the vector
  // kernels at short lengths too.
  for (simd::Tier T : supportedTiers()) {
    TierGuard G(T);
    RNG R(0xd15bu + static_cast<uint64_t>(T));
    for (size_t N = 1; N <= 24; ++N) {
      for (int Trial = 0; Trial < 32; ++Trial) {
        GuardedSpan Words(N), Masks(N);
        Words.fill(R, 40);
        Masks.fill(R, 60);
        std::vector<uint64_t> RefW(Words.data(), Words.data() + N);

        EXPECT_EQ(simd::firstConflictDispatch(Words.data(), Masks.data(), N),
                  refFirstConflict(RefW.data(), Masks.data(), N));

        uint64_t RefClash = refOrIntoCheck(RefW.data(), Masks.data(), N);
        uint64_t Got = simd::orIntoCheckDispatch(Words.data(), Masks.data(), N);
        EXPECT_EQ(Got != 0, RefClash != 0);
        EXPECT_EQ(0, std::memcmp(Words.data(), RefW.data(), N * 8));

        refAndNotInto(RefW.data(), Masks.data(), N);
        simd::andNotIntoDispatch(Words.data(), Masks.data(), N);
        EXPECT_EQ(0, std::memcmp(Words.data(), RefW.data(), N * 8));

        refOrInto(RefW.data(), Masks.data(), N);
        simd::orIntoDispatch(Words.data(), Masks.data(), N);
        EXPECT_EQ(0, std::memcmp(Words.data(), RefW.data(), N * 8))
            << "orIntoDispatch, tier " << simd::tierName(T) << " N=" << N;

        ASSERT_TRUE(Words.guardsIntact());
        ASSERT_TRUE(Masks.guardsIntact());
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// 2. Module differential: scalar vs best tier
//===----------------------------------------------------------------------===//

namespace {

/// The seven machine models of the corpus.
std::vector<std::pair<std::string, MachineDescription>> allCorpusMachines() {
  std::vector<std::pair<std::string, MachineDescription>> Models;
  Models.emplace_back("fig1", makeFig1Machine());
  Models.emplace_back("cydra5", makeCydra5().MD);
  Models.emplace_back("alpha21064", makeAlpha21064().MD);
  Models.emplace_back("mips-r3000", makeMipsR3000().MD);
  Models.emplace_back("toy-vliw", makeToyVliw().MD);
  Models.emplace_back("playdoh", makePlayDoh().MD);
  Models.emplace_back("m88100", makeM88100().MD);
  return Models;
}

void expectCountersEqual(const WorkCounters &A, const WorkCounters &B,
                         const std::string &Context) {
  EXPECT_EQ(A.CheckCalls, B.CheckCalls) << Context;
  EXPECT_EQ(A.CheckUnits, B.CheckUnits) << Context;
  EXPECT_EQ(A.AssignCalls, B.AssignCalls) << Context;
  EXPECT_EQ(A.AssignUnits, B.AssignUnits) << Context;
  EXPECT_EQ(A.FreeCalls, B.FreeCalls) << Context;
  EXPECT_EQ(A.FreeUnits, B.FreeUnits) << Context;
  EXPECT_EQ(A.AssignFreeCalls, B.AssignFreeCalls) << Context;
  EXPECT_EQ(A.AssignFreeUnits, B.AssignFreeUnits) << Context;
  EXPECT_EQ(A.TransitionUnits, B.TransitionUnits) << Context;
}

/// Drives a scalar-tier module and a best-tier module through identical
/// seeded traffic — checks, alternative checks, assigns, frees, eviction
/// assigns — and demands identical answers, reserved tables and counters.
void differentialSweep(const std::string &Name, const MachineDescription &MD,
                       QueryConfig Config, int CycleRange, uint64_t Seed,
                       simd::Tier Best) {
  ExpandedMachine EM = expandAlternatives(MD);
  BitvectorQueryModule ScalarQ(EM.Flat, Config);
  BitvectorQueryModule VectorQ(EM.Flat, Config);

  // assignAndFree on an op that self-conflicts at this II is a contract
  // violation (the scheduler must raise the II), so keep the eviction
  // branch away from those ops in modulo mode.
  std::vector<bool> SelfConflicts(EM.Flat.numOperations(), false);
  if (Config.Mode == QueryConfig::Modulo)
    for (OpId Op = 0; Op < static_cast<OpId>(EM.Flat.numOperations()); ++Op)
      SelfConflicts[Op] = hasModuloSelfConflict(EM.Flat.operation(Op).table(),
                                                Config.ModuloII);

  struct Placement {
    OpId Op;
    int Cycle;
    InstanceId Instance;
  };
  RNG R(Seed);
  std::vector<Placement> Live;
  InstanceId Next = 0;

  for (int Step = 0; Step < 6000; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(EM.Flat.numOperations()));
    int Cycle = static_cast<int>(
        R.nextBelow(static_cast<uint64_t>(CycleRange)));

    bool FreeS, FreeV;
    {
      TierGuard G(simd::Tier::Scalar);
      FreeS = ScalarQ.check(Op, Cycle);
    }
    {
      TierGuard G(Best);
      FreeV = VectorQ.check(Op, Cycle);
    }
    ASSERT_EQ(FreeS, FreeV) << Name << " step " << Step << " op " << Op
                            << " cycle " << Cycle;

    // Alternative checks on a random group exercise the union path under
    // both tiers too.
    const std::vector<OpId> &Alts = EM.Groups[R.nextBelow(EM.Groups.size())];
    int AltS, AltV;
    {
      TierGuard G(simd::Tier::Scalar);
      AltS = ScalarQ.checkWithAlternatives(Alts, Cycle);
    }
    {
      TierGuard G(Best);
      AltV = VectorQ.checkWithAlternatives(Alts, Cycle);
    }
    ASSERT_EQ(AltS, AltV) << Name << " step " << Step;

    if (FreeS && Live.size() < 64) {
      {
        TierGuard G(simd::Tier::Scalar);
        ScalarQ.assign(Op, Cycle, Next);
      }
      {
        TierGuard G(Best);
        VectorQ.assign(Op, Cycle, Next);
      }
      Live.push_back({Op, Cycle, Next});
      ++Next;
    } else if (!FreeS && !SelfConflicts[Op] && R.nextBelow(8) == 0) {
      // Occasionally force an eviction assign over the occupied slot; the
      // evicted instance sets must match.
      std::vector<InstanceId> EvS, EvV;
      {
        TierGuard G(simd::Tier::Scalar);
        ScalarQ.assignAndFree(Op, Cycle, Next, EvS);
      }
      {
        TierGuard G(Best);
        VectorQ.assignAndFree(Op, Cycle, Next, EvV);
      }
      ASSERT_EQ(EvS, EvV) << Name << " step " << Step;
      for (InstanceId Id : EvS)
        Live.erase(std::remove_if(Live.begin(), Live.end(),
                                  [Id](const Placement &P) {
                                    return P.Instance == Id;
                                  }),
                   Live.end());
      Live.push_back({Op, Cycle, Next});
      ++Next;
    }

    if (!Live.empty() && R.nextBelow(3) == 0) {
      size_t Victim = R.nextBelow(Live.size());
      Placement P = Live[Victim];
      Live.erase(Live.begin() + static_cast<long>(Victim));
      {
        TierGuard G(simd::Tier::Scalar);
        ScalarQ.free(P.Op, P.Cycle, P.Instance);
      }
      {
        TierGuard G(Best);
        VectorQ.free(P.Op, P.Cycle, P.Instance);
      }
    }
  }

  // Identical reserved tables: every probe answers the same.
  for (OpId Op = 0; Op < static_cast<OpId>(EM.Flat.numOperations()); ++Op)
    for (int Cycle = 0; Cycle < CycleRange; ++Cycle) {
      bool S, V;
      {
        TierGuard G(simd::Tier::Scalar);
        S = ScalarQ.check(Op, Cycle);
      }
      {
        TierGuard G(Best);
        V = VectorQ.check(Op, Cycle);
      }
      ASSERT_EQ(S, V) << Name << " final probe op " << Op << " cycle "
                      << Cycle;
    }

  // Identical Table 6 accounting, field by field.
  expectCountersEqual(ScalarQ.counters(), VectorQ.counters(),
                      Name + " counters");
}

} // namespace

class SimdDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SimdDifferential, ScalarAndBestTierAgree) {
  auto [Name, MD] = allCorpusMachines()[static_cast<size_t>(GetParam())];
  simd::Tier Best = supportedTiers().back();
  if (Best == simd::Tier::Scalar)
    GTEST_SKIP() << "no vector tier on this build/host";

  differentialSweep(Name, MD, QueryConfig::linear(), 128,
                    9000 + static_cast<uint64_t>(GetParam()), Best);
  differentialSweep(Name, MD, QueryConfig::modulo(8), 8,
                    9100 + static_cast<uint64_t>(GetParam()), Best);
  differentialSweep(Name, MD, QueryConfig::modulo(3), 3,
                    9200 + static_cast<uint64_t>(GetParam()), Best);
}

INSTANTIATE_TEST_SUITE_P(Machines, SimdDifferential,
                         ::testing::Range(0, 7));

//===----------------------------------------------------------------------===//
// 3. Schedule bit-identity under scalar vs best tier
//===----------------------------------------------------------------------===//

namespace {

std::vector<MachineModel> allSchedulableModels() {
  std::vector<MachineModel> Models;
  Models.push_back(makeCydra5());
  Models.push_back(makeAlpha21064());
  Models.push_back(makeMipsR3000());
  Models.push_back(makeToyVliw());
  Models.push_back(makePlayDoh());
  Models.push_back(makeM88100());
  return Models;
}

} // namespace

TEST(SimdScheduleIdentity, ListScheduleBitIdenticalAcrossTiers) {
  simd::Tier Best = supportedTiers().back();
  if (Best == simd::Tier::Scalar)
    GTEST_SKIP() << "no vector tier on this build/host";

  for (const MachineModel &Model : allSchedulableModels()) {
    ExpandedMachine EM = expandAlternatives(Model.MD);
    RNG R(42);
    for (int Rep = 0; Rep < 6; ++Rep) {
      // List scheduling needs a DAG, so build one directly: random ops,
      // forward-only data edges with the producer's machine latency.
      DepGraph G("dag");
      size_t NumNodes = 10 + R.nextBelow(10);
      for (size_t I = 0; I < NumNodes; ++I)
        G.addNode(static_cast<OpId>(R.nextBelow(Model.MD.numOperations())));
      for (size_t I = 1; I < NumNodes; ++I)
        for (uint64_t E = 0, Fanin = 1 + R.nextBelow(2); E < Fanin; ++E) {
          NodeId From = static_cast<NodeId>(R.nextBelow(I));
          G.addEdge(From, static_cast<NodeId>(I),
                    Model.Latency[G.opOf(From)]);
        }

      ListScheduleResult A, B;
      {
        TierGuard Tg(simd::Tier::Scalar);
        BitvectorQueryModule Q(EM.Flat, QueryConfig::linear());
        A = listSchedule(G, EM.Groups, Q);
      }
      {
        TierGuard Tg(Best);
        BitvectorQueryModule Q(EM.Flat, QueryConfig::linear());
        B = listSchedule(G, EM.Groups, Q);
      }
      EXPECT_EQ(A.Success, B.Success) << Model.MD.name() << " rep " << Rep;
      EXPECT_EQ(A.Length, B.Length) << Model.MD.name() << " rep " << Rep;
      EXPECT_EQ(A.Time, B.Time) << Model.MD.name() << " rep " << Rep;
      EXPECT_EQ(A.Alternative, B.Alternative) << Model.MD.name() << " rep " << Rep;
    }
  }
}

TEST(SimdScheduleIdentity, ModuloScheduleBitIdenticalAcrossTiers) {
  simd::Tier Best = supportedTiers().back();
  if (Best == simd::Tier::Scalar)
    GTEST_SKIP() << "no vector tier on this build/host";

  for (const MachineModel &Model : allSchedulableModels()) {
    ExpandedMachine EM = expandAlternatives(Model.MD);
    QueryEnvironment Env;
    Env.FlatMD = &EM.Flat;
    Env.Groups = &EM.Groups;
    Env.MakeModule = [&](QueryConfig C) {
      return std::make_unique<BitvectorQueryModule>(EM.Flat, C);
    };

    RNG R(7);
    for (int Rep = 0; Rep < 4; ++Rep) {
      RoleGraph RG = generateLoop(R);
      DepGraph G = bind(RG, Model);

      ModuloScheduleResult A, B;
      {
        TierGuard Tg(simd::Tier::Scalar);
        A = moduloSchedule(G, Model.MD, Env);
      }
      {
        TierGuard Tg(Best);
        B = moduloSchedule(G, Model.MD, Env);
      }
      EXPECT_EQ(A.Success, B.Success) << Model.MD.name() << " rep " << Rep;
      EXPECT_EQ(A.II, B.II) << Model.MD.name() << " rep " << Rep;
      EXPECT_EQ(A.Time, B.Time) << Model.MD.name() << " rep " << Rep;
      EXPECT_EQ(A.Alternative, B.Alternative) << Model.MD.name() << " rep " << Rep;
      expectCountersEqual(A.Counters, B.Counters,
                          Model.MD.name() + " modulo counters");
    }
  }
}
