//===- tests/CppGenTest.cpp - C++ table emission tests --------------------===//

#include "machines/MachineModel.h"
#include "mdl/CppGen.h"
#include "reduce/Reduction.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

} // namespace

TEST(CppGen, Fig1TablesComplete) {
  MachineDescription MD = makeFig1Machine();
  std::string Out = writeCppTables(MD, "fig1_tables");

  EXPECT_NE(Out.find("namespace fig1_tables {"), std::string::npos);
  EXPECT_NE(Out.find("inline constexpr unsigned kNumResources = 5;"),
            std::string::npos);
  EXPECT_NE(Out.find("inline constexpr unsigned kNumOperations = 2;"),
            std::string::npos);
  EXPECT_NE(Out.find("kMaxTableLength = 8;"), std::string::npos);
  EXPECT_NE(Out.find("kUsages_A[]"), std::string::npos);
  EXPECT_NE(Out.find("kUsages_B[]"), std::string::npos);
  // B holds r3 (id 3) in cycles 2..5.
  EXPECT_NE(Out.find("{3, 2}"), std::string::npos);
  EXPECT_NE(Out.find("{3, 5}"), std::string::npos);
  // One kOperations entry per op.
  EXPECT_EQ(countOccurrences(Out, "kUsages_A,"), 1u);
  EXPECT_EQ(countOccurrences(Out, "kUsages_B,"), 1u);
  // Balanced braces (a cheap well-formedness proxy).
  EXPECT_EQ(countOccurrences(Out, "{"), countOccurrences(Out, "}"));
}

TEST(CppGen, SanitizesAwkwardNames) {
  MachineDescription MD("m");
  ResourceId R = MD.addResource("r");
  ReservationTable T;
  T.addUsage(R, 0);
  MD.addOperation("fadd.s@1", T);
  std::string Out = writeCppTables(MD, "ns");
  EXPECT_NE(Out.find("kUsages_fadd_s_1"), std::string::npos);
  // The display name keeps its original spelling.
  EXPECT_NE(Out.find("\"fadd.s@1\""), std::string::npos);
}

TEST(CppGen, EmptyTableGetsPlaceholder) {
  MachineDescription MD("m");
  MD.addResource("r");
  MD.addOperation("nop", ReservationTable());
  std::string Out = writeCppTables(MD, "ns");
  EXPECT_NE(Out.find("placeholder"), std::string::npos);
  EXPECT_NE(Out.find("\"nop\", kUsages_nop, 0}"), std::string::npos);
}

TEST(CppGen, ReducedMachineUsageCountsMatch) {
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  MachineDescription Reduced = reduceMachine(Flat).Reduced;
  std::string Out = writeCppTables(Reduced, "mips_reduced");

  // Every usage appears exactly once: count numeric "{r, c}" rows (the
  // kOperations rows start with a quoted name and are excluded).
  size_t Pairs = 0;
  for (const Operation &Op : Reduced.operations())
    Pairs += std::max<size_t>(Op.table().usageCount(), 1); // placeholders
  size_t NumericRows =
      countOccurrences(Out, "\n    {") - countOccurrences(Out, "\n    {\"");
  EXPECT_EQ(NumericRows, Pairs);
}
