//===- tests/OperationDrivenTest.cpp - Critical-path-first scheduling -----===//

#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "sched/OperationDrivenScheduler.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

/// Builds a random acyclic block over \p M's operations.
DepGraph randomBlock(RNG &R, const MachineModel &M, unsigned N) {
  DepGraph G("block");
  for (unsigned I = 0; I < N; ++I)
    G.addNode(static_cast<OpId>(R.nextBelow(M.MD.numOperations())));
  for (NodeId V = 1; V < N; ++V)
    if (R.nextChance(3, 4)) {
      NodeId From = static_cast<NodeId>(R.nextBelow(V));
      G.addEdge(From, V, M.Latency[G.opOf(From)]);
    }
  return G;
}

/// Re-validates a schedule on a fresh module: every placement must be
/// contention-free in isolation.
void expectFeasible(const MachineDescription &Flat,
                    const std::vector<std::vector<OpId>> &Groups,
                    const DepGraph &G, const OperationDrivenResult &R) {
  ASSERT_TRUE(R.Success);
  DiscreteQueryModule Q(Flat, QueryConfig::linear(-64));
  for (NodeId V = 0; V < G.numNodes(); ++V) {
    OpId Flat0 = Groups[G.opOf(V)][R.Alternative[V]];
    ASSERT_TRUE(Q.check(Flat0, R.Time[V])) << "node " << V;
    Q.assign(Flat0, R.Time[V], static_cast<InstanceId>(V));
  }
  EXPECT_TRUE(G.scheduleRespectsDependences(R.Time, 0));
}

} // namespace

TEST(OperationDriven, PlacesOutOfCycleOrder) {
  // Priority order is critical-path height, so the long-latency chain is
  // placed first and the independent low op lands *earlier or equal* in
  // time despite being scheduled later -- the unrestricted placement the
  // paper's Section 1 highlights.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("ooo");
  OpId Mul = Toy.MD.findOperation("mul");
  OpId Alu = Toy.MD.findOperation("alu");
  NodeId M1 = G.addNode(Mul);
  NodeId M2 = G.addNode(Mul);
  NodeId A = G.addNode(Alu); // independent, low height
  G.addEdge(M1, M2, Toy.Latency[Mul]);

  DiscreteQueryModule Q(EM.Flat, QueryConfig::linear());
  OperationDrivenResult R =
      operationDrivenSchedule(G, EM.Groups, EM.Flat, Q);
  expectFeasible(EM.Flat, EM.Groups, G, R);
  EXPECT_EQ(R.Time[M1], 0);
  EXPECT_LE(R.Time[A], R.Time[M2]); // scheduled last, placed early
}

TEST(OperationDriven, DanglingResidueReported) {
  // A trailing mul holds the multiplier past the block's last issue
  // cycle; the result must report it as residue for the successor.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G("resid");
  G.addNode(Toy.MD.findOperation("alu"));
  NodeId M = G.addNode(Toy.MD.findOperation("mul"));

  DiscreteQueryModule Q(EM.Flat, QueryConfig::linear());
  OperationDrivenResult R =
      operationDrivenSchedule(G, EM.Groups, EM.Flat, Q);
  expectFeasible(EM.Flat, EM.Groups, G, R);
  bool Found = false;
  for (const DanglingOp &D : R.Dangling)
    Found |= D.Cycle == R.Time[M] - R.Length;
  EXPECT_TRUE(Found) << "mul's residue not reported";
}

TEST(OperationDriven, BlockSequencePropagatesResidue) {
  // Two identical mul-heavy blocks: the second block's mul must start
  // later than it would in isolation because block 1's divider^Wmultiplier
  // reservation dangles into it.
  MachineModel Alpha = makeAlpha21064();
  ExpandedMachine EM = expandAlternatives(Alpha.MD);
  OpId Fdivd = Alpha.MD.findOperation("fdivd");

  DepGraph B1("b1"), B2("b2");
  B1.addNode(Fdivd);
  B2.addNode(Fdivd);

  auto MakeModule = [&]() {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(EM.Flat, QueryConfig::linear(-80)));
  };
  std::vector<OperationDrivenResult> Results = scheduleBlockSequence(
      {&B1, &B2}, EM.Groups, EM.Flat, MakeModule);
  ASSERT_EQ(Results.size(), 2u);
  ASSERT_TRUE(Results[0].Success);
  ASSERT_TRUE(Results[1].Success);
  EXPECT_EQ(Results[0].Time[0], 0);
  // Block 1 is one cycle long (single op) but its divider is busy for ~57
  // more; block 2's divide cannot start at 0.
  EXPECT_GT(Results[1].Time[0], 40);

  // Without residue the same block starts immediately.
  DiscreteQueryModule Clean(EM.Flat, QueryConfig::linear(-80));
  OperationDrivenResult Solo =
      operationDrivenSchedule(B2, EM.Groups, EM.Flat, Clean);
  EXPECT_EQ(Solo.Time[0], 0);
}

TEST(OperationDriven, MatchesReducedDescription) {
  // Original and reduced descriptions must drive identical operation-
  // driven schedules (the unrestricted analogue of the paper's 1327-loop
  // validation).
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  RNG R(2024);
  for (int Trial = 0; Trial < 20; ++Trial) {
    DepGraph G = randomBlock(R, Cydra, 4 + R.nextBelow(14));
    DiscreteQueryModule QO(EM.Flat, QueryConfig::linear(-64));
    DiscreteQueryModule QR(Reduced, QueryConfig::linear(-64));
    OperationDrivenResult RO =
        operationDrivenSchedule(G, EM.Groups, EM.Flat, QO);
    OperationDrivenResult RR =
        operationDrivenSchedule(G, EM.Groups, Reduced, QR);
    ASSERT_TRUE(RO.Success);
    ASSERT_TRUE(RR.Success);
    EXPECT_EQ(RO.Time, RR.Time) << "trial " << Trial;
    EXPECT_EQ(RO.Alternative, RR.Alternative) << "trial " << Trial;

    // The dangling *lists* may differ (reduced tables can be shorter),
    // but the constraints they impose on a successor block are identical:
    // scheduling the same follow-up block under each residue must produce
    // the same schedule.
    DepGraph Succ = randomBlock(R, Cydra, 4 + R.nextBelow(8));
    DiscreteQueryModule SO(EM.Flat, QueryConfig::linear(-64));
    DiscreteQueryModule SR(Reduced, QueryConfig::linear(-64));
    OperationDrivenResult TO = operationDrivenSchedule(
        Succ, EM.Groups, EM.Flat, SO, RO.Dangling);
    OperationDrivenResult TR = operationDrivenSchedule(
        Succ, EM.Groups, Reduced, SR, RR.Dangling);
    ASSERT_TRUE(TO.Success);
    ASSERT_TRUE(TR.Success);
    EXPECT_EQ(TO.Time, TR.Time) << "successor, trial " << Trial;
    EXPECT_EQ(TO.Alternative, TR.Alternative)
        << "successor, trial " << Trial;
  }
}

TEST(OperationDriven, RandomBlocksAllMachines) {
  for (const MachineModel &M :
       {makeToyVliw(), makeMipsR3000(), makeAlpha21064(), makePlayDoh()}) {
    ExpandedMachine EM = expandAlternatives(M.MD);
    RNG R(99);
    for (int Trial = 0; Trial < 15; ++Trial) {
      DepGraph G = randomBlock(R, M, 3 + R.nextBelow(20));
      DiscreteQueryModule Q(EM.Flat, QueryConfig::linear(-64));
      OperationDrivenResult Res =
          operationDrivenSchedule(G, EM.Groups, EM.Flat, Q);
      expectFeasible(EM.Flat, EM.Groups, G, Res);
    }
  }
}
