//===- tests/SchedulerTest.cpp - DepGraph, MII, list & modulo scheduling --===//

#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "sched/IterativeModuloScheduler.h"
#include "sched/ListScheduler.h"
#include "sched/MII.h"
#include "support/RNG.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

/// A fresh discrete module over \p Flat confirms that placing every node of
/// \p G at Time[n] mod II (picking Alternative[n]) is contention-free.
void expectScheduleFeasible(const MachineDescription &Flat,
                            const std::vector<std::vector<OpId>> &Groups,
                            const DepGraph &G,
                            const ModuloScheduleResult &R) {
  ASSERT_TRUE(R.Success);
  DiscreteQueryModule Q(Flat, QueryConfig::modulo(R.II));
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    OpId Flat0 = Groups[G.opOf(N)][R.Alternative[N]];
    ASSERT_TRUE(Q.check(Flat0, R.Time[N]))
        << "contention at node " << N << " of " << G.name();
    Q.assign(Flat0, R.Time[N], static_cast<InstanceId>(N));
  }
  EXPECT_TRUE(G.scheduleRespectsDependences(R.Time, R.II));
}

QueryEnvironment discreteEnv(const MachineDescription &Flat,
                             const std::vector<std::vector<OpId>> &Groups) {
  QueryEnvironment Env;
  Env.FlatMD = &Flat;
  Env.Groups = &Groups;
  Env.MakeModule = [&Flat](QueryConfig C) {
    return std::unique_ptr<ContentionQueryModule>(
        new DiscreteQueryModule(Flat, C));
  };
  return Env;
}

} // namespace

TEST(DepGraph, TopologicalOrderAndAcyclicity) {
  DepGraph G("g");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(0);
  NodeId C = G.addNode(0);
  G.addEdge(A, B, 1);
  G.addEdge(B, C, 1);
  G.addEdge(A, C, 2);
  EXPECT_TRUE(G.isAcyclic());
  EXPECT_EQ(G.topologicalOrder(), (std::vector<NodeId>{A, B, C}));

  G.addEdge(C, A, 1, /*Distance=*/1);
  EXPECT_FALSE(G.isAcyclic()); // loop-carried edge
}

TEST(DepGraph, ScheduleRespectsDependences) {
  DepGraph G("g");
  NodeId A = G.addNode(0);
  NodeId B = G.addNode(0);
  G.addEdge(A, B, 3);
  EXPECT_TRUE(G.scheduleRespectsDependences({0, 3}, 0));
  EXPECT_FALSE(G.scheduleRespectsDependences({0, 2}, 0));
  // With a carried edge, II participates.
  G.addEdge(B, A, 5, 1);
  EXPECT_TRUE(G.scheduleRespectsDependences({0, 3}, 8));
  EXPECT_FALSE(G.scheduleRespectsDependences({0, 3}, 7));
}

TEST(MII, RecurrenceBound) {
  DepGraph G("rec");
  NodeId A = G.addNode(0);
  G.addEdge(A, A, 4, 1);
  EXPECT_EQ(computeRecMII(G), 4);

  DepGraph G2("rec2");
  NodeId X = G2.addNode(0);
  NodeId Y = G2.addNode(0);
  G2.addEdge(X, Y, 3, 0);
  G2.addEdge(Y, X, 2, 1);
  EXPECT_EQ(computeRecMII(G2), 5);

  DepGraph G3("dist2");
  NodeId Z = G3.addNode(0);
  G3.addEdge(Z, Z, 9, 2); // ceil(9/2) = 5
  EXPECT_EQ(computeRecMII(G3), 5);

  DepGraph Acyclic("dag");
  Acyclic.addNode(0);
  EXPECT_EQ(computeRecMII(Acyclic), 1);
}

TEST(MII, ResourceBound) {
  MachineModel Toy = makeToyVliw();
  DepGraph G("loads");
  OpId Load = Toy.MD.findOperation("load");
  for (int I = 0; I < 4; ++I)
    G.addNode(Load);
  // Each load holds Mem for 2 cycles; 4 loads need II >= 8.
  EXPECT_EQ(computeResMII(Toy.MD, G), 8);

  DepGraph G2("alus");
  OpId Alu = Toy.MD.findOperation("alu");
  for (int I = 0; I < 4; ++I)
    G2.addNode(Alu);
  // ALUs split over two slots but share the writeback bus: 4 ops, 1 bus.
  EXPECT_EQ(computeResMII(Toy.MD, G2), 4);
}

TEST(ListScheduler, ChainOnToyVliw) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);

  DepGraph G("chain");
  OpId Load = Toy.MD.findOperation("load");
  OpId Alu = Toy.MD.findOperation("alu");
  NodeId L = G.addNode(Load);
  NodeId A1 = G.addNode(Alu);
  NodeId A2 = G.addNode(Alu);
  G.addEdge(L, A1, Toy.Latency[Load]);
  G.addEdge(A1, A2, Toy.Latency[Alu]);

  DiscreteQueryModule Q(EM.Flat, QueryConfig::linear());
  ListScheduleResult R = listSchedule(G, EM.Groups, Q);
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Time[L], 0);
  EXPECT_EQ(R.Time[A1], R.Time[L] + Toy.Latency[Load]);
  EXPECT_EQ(R.Time[A2], R.Time[A1] + Toy.Latency[Alu]);
  EXPECT_TRUE(G.scheduleRespectsDependences(R.Time, 0));
}

TEST(ListScheduler, BoundaryConditionsDelaySchedule) {
  // A multiply dangling from the predecessor block occupies the multiplier
  // through cycle 1; a new mul cannot start before the unit frees up.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  OpId Mul = Toy.MD.findOperation("mul");
  OpId FlatMul = EM.Groups[Mul][0];

  DepGraph G("mulblock");
  G.addNode(Mul);

  DiscreteQueryModule Clean(EM.Flat, QueryConfig::linear(-4));
  ListScheduleResult NoDangle = listSchedule(G, EM.Groups, Clean);
  ASSERT_TRUE(NoDangle.Success);
  EXPECT_EQ(NoDangle.Time[0], 0);

  DiscreteQueryModule Seeded(EM.Flat, QueryConfig::linear(-4));
  ListScheduleResult Dangled =
      listSchedule(G, EM.Groups, Seeded, {{FlatMul, -2}});
  ASSERT_TRUE(Dangled.Success);
  // mul@-2 holds Mul in cycles -1..1 and WbBus at 2; mul@0 would collide
  // on Mul (1..3) and mul@1 on Mul@1? -- first feasible slot is 2... the
  // new mul at t uses Mul in t+1..t+3 and WbBus at t+4; conflicts for
  // t+1 <= 1, i.e. t <= 0. Earliest is t = 1.
  EXPECT_EQ(Dangled.Time[0], 1);
}

TEST(ListScheduler, IdenticalSchedulesOriginalVsReduced) {
  // The paper's 1327-loop validation, in miniature: list scheduling against
  // the reduced description must reproduce the original's schedules
  // exactly.
  for (const MachineModel &M :
       {makeToyVliw(), makeMipsR3000(), makeCydra5()}) {
    ExpandedMachine EM = expandAlternatives(M.MD);
    MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

    RNG R(111);
    for (int Trial = 0; Trial < 25; ++Trial) {
      // Random acyclic graph over original ops.
      DepGraph G("t");
      unsigned N = 3 + static_cast<unsigned>(R.nextBelow(12));
      for (unsigned I = 0; I < N; ++I)
        G.addNode(static_cast<OpId>(R.nextBelow(M.MD.numOperations())));
      for (NodeId V = 1; V < N; ++V) {
        NodeId From = static_cast<NodeId>(R.nextBelow(V));
        G.addEdge(From, V, M.Latency[G.opOf(From)]);
      }

      DiscreteQueryModule QO(EM.Flat, QueryConfig::linear());
      DiscreteQueryModule QR(Reduced, QueryConfig::linear());
      ListScheduleResult RO = listSchedule(G, EM.Groups, QO);
      ListScheduleResult RR = listSchedule(G, EM.Groups, QR);
      ASSERT_TRUE(RO.Success);
      ASSERT_TRUE(RR.Success);
      EXPECT_EQ(RO.Time, RR.Time) << M.MD.name() << " trial " << Trial;
      EXPECT_EQ(RO.Alternative, RR.Alternative)
          << M.MD.name() << " trial " << Trial;
    }
  }
}

TEST(ModuloScheduler, InnerProductOnCydra) {
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  DepGraph G = bind(livermoreKernels()[1], Cydra); // inner_product

  ModuloScheduleResult R =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  // The reduction recurrence (fadd latency 6, distance 1) forces II >= 6.
  EXPECT_GE(R.Stats.RecMII, 6);
  EXPECT_GE(R.II, R.Stats.MII);
  expectScheduleFeasible(EM.Flat, EM.Groups, G, R);
}

TEST(ModuloScheduler, AchievesMIIOnParallelLoops) {
  // first_diff is fully parallel. On the single-memory-pipe toy VLIW the
  // resource bound is exact and the IMS must land on MII.
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EMToy = expandAlternatives(Toy.MD);
  DepGraph GToy = bind(livermoreKernels()[5], Toy);
  ModuloScheduleResult RToy =
      moduloSchedule(GToy, Toy.MD, discreteEnv(EMToy.Flat, EMToy.Groups));
  ASSERT_TRUE(RToy.Success);
  EXPECT_EQ(RToy.II, RToy.Stats.MII);
  expectScheduleFeasible(EMToy.Flat, EMToy.Groups, GToy, RToy);

  // On the Cydra the fractional two-port ResMII can be off by one (3
  // memory ops on 2 ports cannot pack into 3 cycles), so only closeness is
  // required.
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  DepGraph G = bind(livermoreKernels()[5], Cydra);
  ModuloScheduleResult R =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  EXPECT_LE(R.II, R.Stats.MII + 1);
  expectScheduleFeasible(EM.Flat, EM.Groups, G, R);
}

TEST(ModuloScheduler, AllKernelsScheduleOnAllMachines) {
  for (const MachineModel &M :
       {makeCydra5(), makeAlpha21064(), makeMipsR3000(), makeToyVliw(),
        makePlayDoh()}) {
    ExpandedMachine EM = expandAlternatives(M.MD);
    for (const RoleGraph &K : livermoreKernels()) {
      DepGraph G = bind(K, M);
      ModuloScheduleResult R =
          moduloSchedule(G, M.MD, discreteEnv(EM.Flat, EM.Groups));
      ASSERT_TRUE(R.Success) << M.MD.name() << " " << K.Name;
      expectScheduleFeasible(EM.Flat, EM.Groups, G, R);
      EXPECT_LE(static_cast<double>(R.II) / R.Stats.MII, 2.0)
          << M.MD.name() << " " << K.Name << ": II far above MII";
    }
  }
}

TEST(ModuloScheduler, SameIIAcrossRepresentationsAndDescriptions) {
  // Identical query answers => identical scheduling traces. Run the same
  // kernels against original/reduced x discrete/bitvector and require the
  // same II and the same schedule.
  MachineModel Mips = makeMipsR3000();
  ExpandedMachine EM = expandAlternatives(Mips.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  auto bitvectorEnv = [&](const MachineDescription &Flat) {
    QueryEnvironment Env;
    Env.FlatMD = &Flat;
    Env.Groups = &EM.Groups;
    Env.MakeModule = [&Flat](QueryConfig C) {
      return std::unique_ptr<ContentionQueryModule>(
          new BitvectorQueryModule(Flat, C));
    };
    return Env;
  };

  for (const RoleGraph &K : livermoreKernels()) {
    DepGraph G = bind(K, Mips);
    ModuloScheduleResult Base =
        moduloSchedule(G, Mips.MD, discreteEnv(EM.Flat, EM.Groups));
    ASSERT_TRUE(Base.Success);

    for (const QueryEnvironment &Env :
         {discreteEnv(Reduced, EM.Groups), bitvectorEnv(EM.Flat),
          bitvectorEnv(Reduced)}) {
      ModuloScheduleResult Other = moduloSchedule(G, Mips.MD, Env);
      ASSERT_TRUE(Other.Success) << K.Name;
      EXPECT_EQ(Other.II, Base.II) << K.Name;
      EXPECT_EQ(Other.Time, Base.Time) << K.Name;
      EXPECT_EQ(Other.Alternative, Base.Alternative) << K.Name;
    }
  }
}

TEST(ModuloScheduler, BudgetForcesHigherII) {
  // With a tiny budget, hard loops take more attempts (and sometimes a
  // larger II) but must still schedule.
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  DepGraph G = bind(replicate(livermoreKernels()[0], 6), Cydra);

  ModuloScheduleOptions Tight;
  Tight.BudgetRatio = 1;
  ModuloScheduleResult R =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups), Tight);
  ASSERT_TRUE(R.Success);
  expectScheduleFeasible(EM.Flat, EM.Groups, G, R);

  ModuloScheduleResult Loose =
      moduloSchedule(G, Cydra.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(Loose.Success);
  EXPECT_LE(Loose.II, R.II);
}

TEST(ModuloScheduler, ChecksPerDecisionRecorded) {
  MachineModel Toy = makeToyVliw();
  ExpandedMachine EM = expandAlternatives(Toy.MD);
  DepGraph G = bind(livermoreKernels()[6], Toy); // daxpy
  ModuloScheduleResult R =
      moduloSchedule(G, Toy.MD, discreteEnv(EM.Flat, EM.Groups));
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(R.Stats.ChecksPerDecision.size(), R.Stats.totalDecisions());
  for (uint32_t C : R.Stats.ChecksPerDecision)
    EXPECT_GE(C, 1u);
  EXPECT_GT(R.Counters.AssignFreeCalls, 0u);
  EXPECT_EQ(R.Counters.AssignCalls, 0u); // IMS always uses assign&free
}
