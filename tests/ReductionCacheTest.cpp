//===- tests/ReductionCacheTest.cpp - On-disk cache robustness ------------===//
//
// The ReductionCache contract: hits reproduce the uncached result exactly,
// and *nothing* in the cache directory can make reduction fail — a
// truncated, garbage, or key-skewed entry is a miss that recomputes and
// heals the slot. Corruption scenarios are injected by editing entry files
// directly.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "mdl/Writer.h"
#include "reduce/ReductionCache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

using namespace rmd;

namespace {

class ReductionCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "/rmd-cache-test-" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(Dir);
    Flat = expandAlternatives(makeCydra5().MD).Flat;
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  /// The single entry file of \p Cache, asserting there is exactly one.
  std::string onlyEntry() {
    std::vector<std::string> Entries;
    for (const auto &E : std::filesystem::directory_iterator(Dir))
      Entries.push_back(E.path().string());
    EXPECT_EQ(Entries.size(), 1u);
    return Entries.empty() ? std::string() : Entries.front();
  }

  std::string Dir;
  MachineDescription Flat{""};
};

TEST_F(ReductionCacheTest, MissThenHitReproducesExactResult) {
  ReductionCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());

  bool Hit = true;
  ReductionResult Cold = Cache.reduce(Flat, {}, &Hit);
  EXPECT_FALSE(Hit);

  ReductionResult Warm = Cache.reduce(Flat, {}, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(writeMdl(Warm.Reduced), writeMdl(Cold.Reduced));
  EXPECT_EQ(Warm.GeneratingSetSize, Cold.GeneratingSetSize);
  EXPECT_EQ(Warm.PrunedSetSize, Cold.PrunedSetSize);
  EXPECT_EQ(Warm.CoveredLatencies, Cold.CoveredLatencies);
}

TEST_F(ReductionCacheTest, ObjectivesGetDistinctEntries) {
  ReductionOptions Word;
  Word.Objective = SelectionObjective::wordUses(4);
  EXPECT_NE(ReductionCache::key(Flat, SelectionObjective::resUses()),
            ReductionCache::key(Flat, Word.Objective));

  ReductionCache Cache(Dir);
  (void)Cache.reduce(Flat);
  bool Hit = true;
  ReductionResult R = Cache.reduce(Flat, Word, &Hit);
  EXPECT_FALSE(Hit) << "word objective must not hit the res-uses entry";
  EXPECT_GT(R.Reduced.numResources(), 0u);
}

TEST_F(ReductionCacheTest, TruncatedEntryRecomputesAndHeals) {
  ReductionCache Cache(Dir);
  ReductionResult Reference = Cache.reduce(Flat);
  std::string Entry = onlyEntry();

  // Chop the entry mid-file: the header parses but the MDL body does not.
  std::filesystem::resize_file(Entry,
                               std::filesystem::file_size(Entry) / 2);

  bool Hit = true;
  ReductionResult R = Cache.reduce(Flat, {}, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_EQ(writeMdl(R.Reduced), writeMdl(Reference.Reduced));

  // The recompute healed the slot.
  (void)Cache.reduce(Flat, {}, &Hit);
  EXPECT_TRUE(Hit);
}

TEST_F(ReductionCacheTest, GarbageEntryRecomputesAndHeals) {
  ReductionCache Cache(Dir);
  ReductionResult Reference = Cache.reduce(Flat);
  {
    std::ofstream Out(onlyEntry(), std::ios::trunc | std::ios::binary);
    Out << "\x7f\x45\x4c\x46 this is not a cache entry at all\n";
  }

  bool Hit = true;
  ReductionResult R = Cache.reduce(Flat, {}, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_EQ(writeMdl(R.Reduced), writeMdl(Reference.Reduced));
  (void)Cache.reduce(Flat, {}, &Hit);
  EXPECT_TRUE(Hit);
}

TEST_F(ReductionCacheTest, EmptyEntryRecomputes) {
  ReductionCache Cache(Dir);
  (void)Cache.reduce(Flat);
  { std::ofstream Out(onlyEntry(), std::ios::trunc); }

  bool Hit = true;
  ReductionResult R = Cache.reduce(Flat, {}, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_GT(R.Reduced.numResources(), 0u);
}

TEST_F(ReductionCacheTest, KeySkewedEntryIsAMiss) {
  // An entry whose stored key line does not match its filename (e.g. a
  // file renamed by hand, or a hash-scheme change) must be rejected.
  ReductionCache Cache(Dir);
  (void)Cache.reduce(Flat);
  std::string Entry = onlyEntry();

  MachineDescription Other = expandAlternatives(makeMipsR3000().MD).Flat;
  std::string OtherKey = ReductionCache::key(Other, {});
  std::filesystem::rename(Entry, Dir + "/" + OtherKey + ".mdl");

  bool Hit = true;
  ReductionResult R = Cache.reduce(Other, {}, &Hit);
  EXPECT_FALSE(Hit) << "entry stored under a foreign key must not hit";
  EXPECT_EQ(writeMdl(R.Reduced),
            writeMdl(reduceMachine(Other).Reduced));
}

TEST_F(ReductionCacheTest, EvictForcesRecompute) {
  ReductionCache Cache(Dir);
  (void)Cache.reduce(Flat);
  std::string Key = ReductionCache::key(Flat, {});
  Cache.evict(Key);
  EXPECT_FALSE(Cache.load(Key).has_value());
}

TEST_F(ReductionCacheTest, UncreatableDirectoryDisablesQuietly) {
  // A path under an existing *file* cannot become a directory.
  std::string FilePath = ::testing::TempDir() + "/rmd-cache-blocker";
  { std::ofstream Out(FilePath); Out << "x"; }
  ReductionCache Cache(FilePath + "/nested");
  EXPECT_FALSE(Cache.enabled());

  bool Hit = true;
  ReductionResult R = Cache.reduce(Flat, {}, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_GT(R.Reduced.numResources(), 0u);
  std::filesystem::remove(FilePath);
}

TEST_F(ReductionCacheTest, ContentChangesTheKey) {
  std::string Base = ReductionCache::key(Flat, {});
  MachineDescription Mips = expandAlternatives(makeMipsR3000().MD).Flat;
  EXPECT_NE(ReductionCache::key(Mips, {}), Base);
}

TEST_F(ReductionCacheTest, OrphanedTempFilesSweptOnOpen) {
  std::filesystem::create_directories(Dir);
  // A temp file from a writer that no longer exists: pids are capped well
  // below this, so the sweep must treat the writer as dead and remove it.
  std::string Orphan = Dir + "/deadbeef.mdl.tmp999999999";
  { std::ofstream Out(Orphan); Out << "partial"; }
  // Our own pid is alive: this one must survive the sweep.
  std::string Live =
      Dir + "/deadbeef.mdl.tmp" + std::to_string(::getpid());
  { std::ofstream Out(Live); Out << "in flight"; }
  // Not a temp-file name shape at all: untouched.
  std::string Unrelated = Dir + "/notes.txt";
  { std::ofstream Out(Unrelated); Out << "keep"; }

  ReductionCache Cache(Dir);
  ASSERT_TRUE(Cache.enabled());
  EXPECT_FALSE(std::filesystem::exists(Orphan));
  EXPECT_TRUE(std::filesystem::exists(Live));
  EXPECT_TRUE(std::filesystem::exists(Unrelated));
}

TEST_F(ReductionCacheTest, CommittedEntrySurvivesStoreAndLeavesNoTemp) {
  ReductionCache Cache(Dir);
  (void)Cache.reduce(Flat);
  size_t Temps = 0, Entries = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    std::string Name = E.path().filename().string();
    (Name.find(".tmp") != std::string::npos ? Temps : Entries) += 1;
  }
  EXPECT_EQ(Temps, 0u);
  EXPECT_EQ(Entries, 1u);
}

} // namespace
