//===- tests/AutomatonQueryTest.cpp - FSA query module tests --------------===//
//
// The automaton-based query module must answer every query exactly like
// the reservation-table modules; what differs is the work (lookups,
// propagation) and state it needs -- which is the paper's argument.
//
//===----------------------------------------------------------------------===//

#include "automaton/AutomatonQuery.h"
#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

TEST(AutomatonQuery, Fig1Basics) {
  MachineDescription MD = makeFig1Machine();
  AutomatonQueryModule Q(MD, /*Horizon=*/32);
  OpId A = MD.findOperation("A");
  OpId B = MD.findOperation("B");

  EXPECT_TRUE(Q.check(A, 0));
  Q.assign(A, 0, 1);
  EXPECT_FALSE(Q.check(B, 1)); // 1 in F(B,A)
  EXPECT_TRUE(Q.check(B, 0));
  EXPECT_TRUE(Q.check(B, 2));
  EXPECT_FALSE(Q.check(A, 0));

  Q.free(A, 0, 1);
  EXPECT_TRUE(Q.check(B, 1));
}

TEST(AutomatonQuery, ReverseDirectionCatchesLaterOps) {
  // Insertion *below* an already scheduled operation must consult the
  // reverse automaton: B@2 first, then A@1 conflicts (B issues 1 cycle
  // after A is forbidden).
  MachineDescription MD = makeFig1Machine();
  AutomatonQueryModule Q(MD, 32);
  OpId A = MD.findOperation("A");
  OpId B = MD.findOperation("B");
  Q.assign(B, 2, 7);
  EXPECT_FALSE(Q.check(A, 1));
  EXPECT_TRUE(Q.check(A, 2));
}

TEST(AutomatonQuery, HorizonBounds) {
  MachineDescription MD = makeFig1Machine();
  AutomatonQueryModule Q(MD, 10);
  OpId B = MD.findOperation("B"); // 8 cycles long
  EXPECT_TRUE(Q.check(B, 2));     // 2 + 8 == 10 fits
  EXPECT_FALSE(Q.check(B, 3));    // spills past the horizon
  EXPECT_FALSE(Q.check(B, -1));
}

TEST(AutomatonQuery, AssignAndFreeEvictsTheConflictSet) {
  MachineDescription MD = makeFig1Machine();
  AutomatonQueryModule Q(MD, 32);
  OpId A = MD.findOperation("A");
  OpId B = MD.findOperation("B");
  Q.assign(A, 0, 1);
  Q.assign(A, 5, 2); // does not conflict with B@1

  std::vector<InstanceId> Evicted;
  Q.assignAndFree(B, 1, 3, Evicted);
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_EQ(Evicted[0], 1);
  EXPECT_FALSE(Q.check(B, 1)); // B itself now holds resources
  // Instance 1's resources are released: A fits at cycle 3 (clear of both
  // B@1 and the untouched A@5).
  EXPECT_TRUE(Q.check(A, 3));
}

TEST(AutomatonQuery, WorkCountersPopulated) {
  MachineDescription MD = makeFig1Machine();
  AutomatonQueryModule Q(MD, 32);
  Q.check(MD.findOperation("B"), 4);
  EXPECT_EQ(Q.counters().CheckCalls, 1u);
  EXPECT_GE(Q.counters().CheckUnits, 2u); // >= 1 lookup per direction
  Q.assign(MD.findOperation("B"), 4, 1);
  // Assignment propagates states across the operation's 8-cycle span.
  EXPECT_GT(Q.counters().AssignUnits, 4u);
  EXPECT_GT(Q.cachedStateBytes(), 0u);
  EXPECT_GT(Q.tableBytes(), 0u);
}

// Cross-representation property: automaton answers == discrete answers
// under random traffic, including eviction sets.
class AutomatonQueryEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AutomatonQueryEquivalence, RandomTraffic) {
  MachineDescription Flat =
      GetParam() == 0
          ? expandAlternatives(makeToyVliw().MD).Flat
          : reduceMachine(expandAlternatives(makeMipsR3000().MD).Flat)
                .Reduced;

  const int Horizon = 48;
  AutomatonQueryModule QA(Flat, Horizon);
  DiscreteQueryModule QD(Flat, QueryConfig::linear());

  RNG R(31 + GetParam());
  InstanceId Next = 0;
  std::vector<bool> Live;
  std::vector<std::pair<OpId, int>> Info;

  for (int Step = 0; Step < 400; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int MaxStart = Horizon - Flat.operation(Op).table().length();
    if (MaxStart < 0)
      continue;
    int Cycle = static_cast<int>(R.nextBelow(MaxStart + 1));

    bool WantA = QA.check(Op, Cycle);
    bool WantD = QD.check(Op, Cycle);
    ASSERT_EQ(WantA, WantD) << "step " << Step << " op " << Op << " cycle "
                            << Cycle;

    if (R.nextChance(1, 2)) {
      // assignAndFree path: same eviction sets required.
      std::vector<InstanceId> EvA, EvD;
      InstanceId Id = Next++;
      QA.assignAndFree(Op, Cycle, Id, EvA);
      QD.assignAndFree(Op, Cycle, Id, EvD);
      std::sort(EvA.begin(), EvA.end());
      std::sort(EvD.begin(), EvD.end());
      ASSERT_EQ(EvA, EvD) << "step " << Step;
      Live.push_back(true);
      Info.push_back({Op, Cycle});
      for (InstanceId V : EvA)
        Live[static_cast<size_t>(V)] = false;
    } else if (WantA) {
      InstanceId Id = Next++;
      QA.assign(Op, Cycle, Id);
      QD.assign(Op, Cycle, Id);
      Live.push_back(true);
      Info.push_back({Op, Cycle});
    } else {
      Live.push_back(false);
      Info.push_back({0, 0});
      ++Next; // keep ids aligned with Live/Info indices
    }

    // Occasionally free a live instance from both.
    if (R.nextChance(1, 4)) {
      for (size_t I = 0; I < Live.size(); ++I)
        if (Live[I]) {
          QA.free(Info[I].first, Info[I].second,
                  static_cast<InstanceId>(I));
          QD.free(Info[I].first, Info[I].second,
                  static_cast<InstanceId>(I));
          Live[I] = false;
          break;
        }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, AutomatonQueryEquivalence,
                         ::testing::Values(0, 1));
