//===- tests/PredicatedQueryTest.cpp - Predicate-aware reservations -------===//

#include "machines/MachineModel.h"
#include "query/DiscreteQuery.h"
#include "query/PredicatedQuery.h"
#include "reduce/Reduction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

TEST(Predicates, DisjointnessModel) {
  EXPECT_TRUE(predicatesDisjoint(3, -3));
  EXPECT_TRUE(predicatesDisjoint(-7, 7));
  EXPECT_FALSE(predicatesDisjoint(3, 3));
  EXPECT_FALSE(predicatesDisjoint(3, -4));
  EXPECT_FALSE(predicatesDisjoint(0, 0));  // "always" overlaps itself
  EXPECT_FALSE(predicatesDisjoint(0, -0)); // and its negation is itself
}

TEST(PredicatedQuery, ComplementaryOpsShareResources) {
  // IF-converted diamond: the then-side and else-side fadd both want the
  // FP adder in the same cycle; being guarded by p and !p, they may share.
  MachineModel Cydra = makeCydra5();
  MachineDescription Flat = expandAlternatives(Cydra.MD).Flat;
  OpId Fadd = Flat.findOperation("fadd.s@0");
  ASSERT_LT(Fadd, Flat.numOperations());

  PredicatedQueryModule Q(Flat, QueryConfig::linear());
  EXPECT_TRUE(Q.check(Fadd, 0, /*Pred=*/+1));
  Q.assign(Fadd, 0, +1, 10);

  // Same resources, same cycle: blocked for the same predicate and for
  // "always", permitted for the complement.
  EXPECT_FALSE(Q.check(Fadd, 0, +1));
  EXPECT_FALSE(Q.check(Fadd, 0, 0));
  EXPECT_FALSE(Q.check(Fadd, 0, +2)); // unrelated predicate may co-execute
  EXPECT_TRUE(Q.check(Fadd, 0, -1));

  Q.assign(Fadd, 0, -1, 11);
  // The cell now holds the complementary pair; nothing else fits.
  EXPECT_FALSE(Q.check(Fadd, 0, +3));
  EXPECT_FALSE(Q.check(Fadd, 0, -1));

  Q.free(Fadd, 0, 10);
  EXPECT_TRUE(Q.check(Fadd, 0, +1)); // the +1 slot opened up again
}

TEST(PredicatedQuery, AlwaysPredicateMatchesPlainDiscrete) {
  // With every predicate 0 the module must behave exactly like the plain
  // discrete module.
  MachineDescription Flat = expandAlternatives(makeToyVliw().MD).Flat;
  PredicatedQueryModule QP(Flat, QueryConfig::modulo(6));
  DiscreteQueryModule QD(Flat, QueryConfig::modulo(6));

  RNG R(12);
  InstanceId Next = 0;
  for (int Step = 0; Step < 400; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    if (hasModuloSelfConflict(Flat.operation(Op).table(), 6))
      continue;
    int Cycle = static_cast<int>(R.nextBelow(12));
    bool WantP = QP.check(Op, Cycle, 0);
    bool WantD = QD.check(Op, Cycle);
    ASSERT_EQ(WantP, WantD) << "step " << Step;
    if (WantP && R.nextChance(2, 3)) {
      InstanceId Id = Next++;
      QP.assign(Op, Cycle, 0, Id);
      QD.assign(Op, Cycle, Id);
    }
  }
}

TEST(PredicatedQuery, ModuloWrapWithPredicates) {
  MachineDescription MD = makeFig1Machine();
  OpId A = MD.findOperation("A");
  PredicatedQueryModule Q(MD, QueryConfig::modulo(4));
  Q.assign(A, 0, +1, 1);
  // A@4 wraps onto A@0's cells: blocked under p, free under !p.
  EXPECT_FALSE(Q.check(A, 4, +1));
  EXPECT_TRUE(Q.check(A, 4, -1));
}

TEST(PredicatedQuery, ReducedDescriptionsPreservePredicateSharing) {
  // Predicate-aware sharing works identically on the reduced description:
  // what matters is cell identity, which the reduction preserves up to
  // renaming (same conflict answers).
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  MachineDescription Reduced = reduceMachine(Flat).Reduced;

  PredicatedQueryModule QO(Flat, QueryConfig::linear());
  PredicatedQueryModule QR(Reduced, QueryConfig::linear());

  RNG R(77);
  InstanceId Next = 0;
  for (int Step = 0; Step < 500; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int Cycle = static_cast<int>(R.nextBelow(30));
    PredicateId Pred = static_cast<PredicateId>(R.nextInRange(-2, 2));
    bool WantO = QO.check(Op, Cycle, Pred);
    bool WantR = QR.check(Op, Cycle, Pred);
    ASSERT_EQ(WantO, WantR)
        << "op " << Op << " cycle " << Cycle << " pred " << Pred;
    if (WantO && R.nextChance(1, 2)) {
      InstanceId Id = Next++;
      QO.assign(Op, Cycle, Pred, Id);
      QR.assign(Op, Cycle, Pred, Id);
    }
  }
}
