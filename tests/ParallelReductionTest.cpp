//===- tests/ParallelReductionTest.cpp - Thread-count bit-exactness -------===//
//
// The parallel reduction pipeline's contract is *bit-exactness*: any thread
// count produces byte-for-byte the machine the sequential pipeline
// produces. These tests sweep thread counts {1, 2, 8} over every builtin
// model and compare each stage — forbidden latency matrix, Algorithm 1
// generating set, pruned set, and the final rendered MDL — against the
// sequential reference. A mere "equivalent" result (same matrix, different
// resource order) would fail here by design: downstream consumers (cache
// keys, generated C++ tables, golden files) depend on the exact bytes.
//
//===----------------------------------------------------------------------===//

#include "machines/MachineModel.h"
#include "mdl/Writer.h"
#include "reduce/Reduction.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

struct NamedMachine {
  const char *Name;
  MachineDescription Flat;
};

std::vector<NamedMachine> allModels() {
  std::vector<NamedMachine> Models;
  Models.push_back({"fig1", expandAlternatives(makeFig1Machine()).Flat});
  Models.push_back({"cydra5", expandAlternatives(makeCydra5().MD).Flat});
  Models.push_back({"alpha", expandAlternatives(makeAlpha21064().MD).Flat});
  Models.push_back({"mips", expandAlternatives(makeMipsR3000().MD).Flat});
  Models.push_back({"toyvliw", expandAlternatives(makeToyVliw().MD).Flat});
  Models.push_back({"playdoh", expandAlternatives(makePlayDoh().MD).Flat});
  Models.push_back({"m88100", expandAlternatives(makeM88100().MD).Flat});
  return Models;
}

const unsigned ThreadSweep[] = {2, 8};

TEST(ParallelReduction, MatrixMatchesSequentialAtEveryThreadCount) {
  for (const NamedMachine &M : allModels()) {
    ForbiddenLatencyMatrix Reference =
        ForbiddenLatencyMatrix::compute(M.Flat);
    for (unsigned Threads : ThreadSweep) {
      ThreadPool Pool(Threads);
      ForbiddenLatencyMatrix Parallel =
          ForbiddenLatencyMatrix::compute(M.Flat, &Pool);
      EXPECT_TRUE(Parallel == Reference)
          << M.Name << " with " << Threads << " threads";
    }
  }
}

TEST(ParallelReduction, GeneratingSetMatchesSequentialAtEveryThreadCount) {
  for (const NamedMachine &M : allModels()) {
    ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(M.Flat);
    std::vector<SynthesizedResource> Reference =
        buildGeneratingSet(FLM);
    std::vector<SynthesizedResource> ReferencePruned =
        pruneGeneratingSet(Reference);
    for (unsigned Threads : ThreadSweep) {
      ThreadPool Pool(Threads);
      std::vector<SynthesizedResource> Parallel =
          buildGeneratingSet(FLM, nullptr, &Pool);
      EXPECT_EQ(Parallel, Reference)
          << M.Name << " generating set, " << Threads << " threads";
      EXPECT_EQ(pruneGeneratingSet(Parallel, &Pool), ReferencePruned)
          << M.Name << " pruned set, " << Threads << " threads";
    }
  }
}

TEST(ParallelReduction, RenderedMachineIsByteIdenticalAtEveryThreadCount) {
  for (const NamedMachine &M : allModels()) {
    for (SelectionObjective Objective :
         {SelectionObjective::resUses(), SelectionObjective::wordUses(4)}) {
      ReductionOptions Sequential;
      Sequential.Objective = Objective;
      Sequential.Threads = 1;
      std::string Reference =
          writeMdl(reduceMachine(M.Flat, Sequential).Reduced);
      for (unsigned Threads : ThreadSweep) {
        ReductionOptions Options;
        Options.Objective = Objective;
        Options.Threads = Threads;
        EXPECT_EQ(writeMdl(reduceMachine(M.Flat, Options).Reduced),
                  Reference)
            << M.Name << " with " << Threads << " threads";
      }
    }
  }
}

TEST(ParallelReduction, ThreadsZeroMeansHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);

  // Threads = 0 must still reduce correctly (whatever the host's core
  // count resolves to).
  MachineDescription Flat = expandAlternatives(makeCydra5().MD).Flat;
  ReductionOptions Options;
  Options.Threads = 0;
  ReductionOptions Sequential;
  EXPECT_EQ(writeMdl(reduceMachine(Flat, Options).Reduced),
            writeMdl(reduceMachine(Flat, Sequential).Reduced));
}

} // namespace
