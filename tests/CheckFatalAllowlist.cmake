# Fails when fatalError() is called outside src/support/ from a file (or
# beyond a per-file budget) not sanctioned by tests/fatal-allowlist.txt.
# Run as: cmake -DSOURCE_DIR=<repo> -P CheckFatalAllowlist.cmake
#
# The point: the recoverable-error layer (support/Status.h) is only as good
# as the absence of stray aborts. Any new fatalError in library, example, or
# bench code must either become a structured error or be explicitly budgeted
# in the allowlist with a rationale.

if(NOT SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

# Parse the allowlist into ALLOW_<index> = "<file>;<count>" pairs.
file(STRINGS "${SOURCE_DIR}/tests/fatal-allowlist.txt" ALLOW_LINES)
set(ALLOW_FILES "")
foreach(LINE IN LISTS ALLOW_LINES)
  if(LINE MATCHES "^#" OR LINE STREQUAL "")
    continue()
  endif()
  if(NOT LINE MATCHES "^([^ ]+) ([0-9]+)$")
    message(FATAL_ERROR "malformed allowlist line: '${LINE}'")
  endif()
  string(REPLACE "/" "_" KEY "${CMAKE_MATCH_1}")
  string(REPLACE "." "_" KEY "${KEY}")
  set(ALLOW_${KEY} "${CMAKE_MATCH_2}")
  list(APPEND ALLOW_FILES "${CMAKE_MATCH_1}")
endforeach()

file(GLOB_RECURSE SOURCES
  "${SOURCE_DIR}/src/*.cpp" "${SOURCE_DIR}/src/*.h"
  "${SOURCE_DIR}/examples/*.cpp" "${SOURCE_DIR}/bench/*.cpp"
  "${SOURCE_DIR}/bench/*.h")

set(ERRORS "")
set(SEEN_FILES "")
foreach(SRC IN LISTS SOURCES)
  file(RELATIVE_PATH REL "${SOURCE_DIR}" "${SRC}")
  if(REL MATCHES "^src/support/")
    continue() # the layer that *defines* fatalError polices itself
  endif()
  file(STRINGS "${SRC}" LINES REGEX "fatalError\\(")
  # Count call sites, not documentation: drop comment lines that merely
  # mention fatalError().
  set(COUNT 0)
  foreach(LINE IN LISTS LINES)
    if(NOT LINE MATCHES "^[ \t]*(//|/\\*|\\*)")
      math(EXPR COUNT "${COUNT} + 1")
    endif()
  endforeach()
  if(COUNT EQUAL 0)
    continue()
  endif()
  list(APPEND SEEN_FILES "${REL}")
  string(REPLACE "/" "_" KEY "${REL}")
  string(REPLACE "." "_" KEY "${KEY}")
  if(NOT DEFINED ALLOW_${KEY})
    string(APPEND ERRORS
      "  ${REL}: ${COUNT} fatalError call(s), file not in the allowlist\n")
  elseif(COUNT GREATER "${ALLOW_${KEY}}")
    string(APPEND ERRORS
      "  ${REL}: ${COUNT} fatalError call(s), allowlist budget is "
      "${ALLOW_${KEY}}\n")
  endif()
endforeach()

# Stale entries rot the list's authority; keep it exact.
foreach(FILE IN LISTS ALLOW_FILES)
  list(FIND SEEN_FILES "${FILE}" FOUND)
  if(FOUND EQUAL -1)
    string(APPEND ERRORS
      "  ${FILE}: allowlisted but has no fatalError calls (stale entry)\n")
  endif()
endforeach()

if(NOT ERRORS STREQUAL "")
  message(FATAL_ERROR "fatalError allowlist violations:\n${ERRORS}"
    "Convert input-triggered failures to support/Status.h errors, or "
    "update tests/fatal-allowlist.txt with a rationale.")
endif()
message(STATUS "fatalError allowlist: clean")
