//===- tests/ExperimentConsistencyTest.cpp - Table 6's precondition -------===//
//
// Table 6 compares work units across representations under the premise
// that every representation drives the *identical* scheduling trace. This
// test enforces the premise end-to-end over a corpus: all four
// description x representation combinations must produce the same
// schedules and the same query-call counts, while work units order the
// way the paper says (reduced < original; packed words < usages).
//
//===----------------------------------------------------------------------===//

#include "reduce/Metrics.h"
#include "reduce/Reduction.h"
#include "workload/Experiment.h"

#include <gtest/gtest.h>

using namespace rmd;

TEST(ExperimentConsistency, FourWaysOneTrace) {
  MachineModel Mips = makeMipsR3000();
  ExpandedMachine EM = expandAlternatives(Mips.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;

  CorpusParams Params;
  Params.LoopCount = 60;
  std::vector<DepGraph> Corpus = buildCorpus(Mips, Params);

  std::vector<RepresentationSpec> Specs(4);
  Specs[0].Kind = RepresentationSpec::Discrete;
  Specs[0].FlatMD = &EM.Flat;
  Specs[0].Label = "orig/discrete";
  Specs[1].Kind = RepresentationSpec::Discrete;
  Specs[1].FlatMD = &Reduced;
  Specs[1].Label = "red/discrete";
  Specs[2].Kind = RepresentationSpec::Bitvector;
  Specs[2].FlatMD = &EM.Flat;
  Specs[2].Label = "orig/bitvector";
  Specs[3].Kind = RepresentationSpec::Bitvector;
  Specs[3].FlatMD = &Reduced;
  Specs[3].Label = "red/bitvector";

  std::vector<SchedulerExperimentResult> Results;
  for (const RepresentationSpec &Spec : Specs)
    Results.push_back(
        runSchedulerExperiment(Mips, EM.Groups, Spec, Corpus));

  for (const SchedulerExperimentResult &R : Results) {
    EXPECT_EQ(R.Failed, 0u) << R.Label;
    // Identical traces: identical II statistics and identical call mix.
    EXPECT_DOUBLE_EQ(R.II.mean(), Results[0].II.mean()) << R.Label;
    EXPECT_DOUBLE_EQ(R.II.max(), Results[0].II.max()) << R.Label;
    EXPECT_EQ(R.Counters.AssignFreeCalls,
              Results[0].Counters.AssignFreeCalls)
        << R.Label;
    EXPECT_EQ(R.Counters.FreeCalls, Results[0].Counters.FreeCalls)
        << R.Label;
    EXPECT_EQ(R.TotalAttempts, Results[0].TotalAttempts) << R.Label;
  }

  // Work ordering: reduced beats original within each representation.
  EXPECT_LT(Results[1].Counters.totalUnits(),
            Results[0].Counters.totalUnits());
  EXPECT_LT(Results[3].Counters.totalUnits(),
            Results[2].Counters.totalUnits());
  // Packed words beat per-usage work on the same description.
  EXPECT_LT(Results[3].Counters.totalUnits(),
            Results[1].Counters.totalUnits());
}

TEST(ExperimentConsistency, WeightedWorkImprovesWithK) {
  // On the Cydra, forcing k = 1 vs the maximal packing must not invert
  // the paper's trend: more cycles per word, fewer units per call.
  MachineModel Cydra = makeCydra5();
  ExpandedMachine EM = expandAlternatives(Cydra.MD);
  MachineDescription Reduced = reduceMachine(EM.Flat).Reduced;
  unsigned MaxK = cyclesPerWord(Reduced.numResources(), 64);
  ASSERT_GE(MaxK, 2u);

  CorpusParams Params;
  Params.LoopCount = 40;
  std::vector<DepGraph> Corpus = buildCorpus(Cydra, Params);

  auto run = [&](unsigned K) {
    RepresentationSpec Spec;
    Spec.Kind = RepresentationSpec::Bitvector;
    Spec.FlatMD = &Reduced;
    Spec.CyclesPerWord = K;
    Spec.Label = "k" + std::to_string(K);
    return runSchedulerExperiment(Cydra, EM.Groups, Spec, Corpus);
  };

  SchedulerExperimentResult K1 = run(1);
  SchedulerExperimentResult KMax = run(MaxK);
  EXPECT_EQ(K1.Failed, 0u);
  EXPECT_EQ(KMax.Failed, 0u);
  EXPECT_LE(KMax.Counters.CheckUnits, K1.Counters.CheckUnits);
  EXPECT_LE(KMax.Counters.totalUnits(), K1.Counters.totalUnits());
}
