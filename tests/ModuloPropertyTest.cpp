//===- tests/ModuloPropertyTest.cpp - MRT semantics vs the matrix ---------===//
//
// The defining property of the Modulo Reservation Table: operation X may
// be placed at cycle c iff no *iteration copy* of any scheduled operation
// conflicts, i.e. for every scheduled (Y, t) and every integer k,
// (c - t) + k*II is not a forbidden latency of (X, Y). This test drives
// the discrete and bitvector modulo modules with random traffic and
// checks every answer against that first-principles oracle.
//
//===----------------------------------------------------------------------===//

#include "flm/ForbiddenLatencyMatrix.h"
#include "machines/MachineModel.h"
#include "query/BitvectorQuery.h"
#include "query/DiscreteQuery.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace rmd;

namespace {

/// Oracle: X at cycle C conflicts with Y at cycle T under a modulo-II
/// schedule iff some relative iteration offset makes the latency
/// forbidden.
bool moduloConflict(const ForbiddenLatencyMatrix &FLM, int MaxLat, OpId X,
                    int C, OpId Y, int T, int II) {
  int Base = C - T;
  // |latency| <= MaxLat bounds the iteration offsets worth testing.
  int KLo = (-MaxLat - Base) / II - 2;
  int KHi = (MaxLat - Base) / II + 2;
  for (int K = KLo; K <= KHi; ++K)
    if (FLM.isForbidden(X, Y, Base + K * II))
      return true;
  return false;
}

} // namespace

class ModuloProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(ModuloProperty, ModulesMatchFirstPrinciplesOracle) {
  auto [MachineIdx, II] = GetParam();
  MachineDescription Flat =
      MachineIdx == 2
          ? makeFig1Machine()
          : expandAlternatives(
                (MachineIdx == 0 ? makeToyVliw() : makeMipsR3000()).MD)
                .Flat;

  ForbiddenLatencyMatrix FLM = ForbiddenLatencyMatrix::compute(Flat);
  int MaxLat = FLM.maxAbsoluteLatency();

  DiscreteQueryModule QD(Flat, QueryConfig::modulo(II));
  BitvectorQueryModule QB(Flat, QueryConfig::modulo(II));

  RNG R(static_cast<uint64_t>(MachineIdx) * 101 + II);
  std::vector<std::pair<OpId, int>> Scheduled;
  InstanceId Next = 0;

  for (int Step = 0; Step < 500; ++Step) {
    OpId Op = static_cast<OpId>(R.nextBelow(Flat.numOperations()));
    int Cycle = static_cast<int>(R.nextBelow(3 * II));

    // Oracle: self-copies first (the op against its own iteration
    // copies), then every scheduled instance.
    bool Conflict = false;
    for (int K = 1; K * II <= MaxLat && !Conflict; ++K)
      Conflict = FLM.isForbidden(Op, Op, K * II);
    for (const auto &[SOp, SCycle] : Scheduled) {
      if (Conflict)
        break;
      Conflict = moduloConflict(FLM, MaxLat, Op, Cycle, SOp, SCycle, II);
    }

    ASSERT_EQ(QD.check(Op, Cycle), !Conflict)
        << "discrete: op " << Op << " cycle " << Cycle << " II " << II
        << " step " << Step;
    ASSERT_EQ(QB.check(Op, Cycle), !Conflict)
        << "bitvector: op " << Op << " cycle " << Cycle << " II " << II
        << " step " << Step;

    if (!Conflict && R.nextChance(1, 2)) {
      InstanceId Id = Next++;
      QD.assign(Op, Cycle, Id);
      QB.assign(Op, Cycle, Id);
      Scheduled.push_back({Op, Cycle});
    } else if (!Scheduled.empty() && R.nextChance(1, 4)) {
      InstanceId Id = Next - 1;
      auto [FOp, FCycle] = Scheduled.back();
      Scheduled.pop_back();
      --Next;
      QD.free(FOp, FCycle, Id);
      QB.free(FOp, FCycle, Id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModuloProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3, 5, 8,
                                                              13)));
