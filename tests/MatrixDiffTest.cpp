//===- tests/MatrixDiffTest.cpp - Semantic diff tests ---------------------===//

#include "flm/MatrixDiff.h"
#include "machines/MachineModel.h"
#include "reduce/Reduction.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace rmd;

TEST(MatrixDiff, IdenticalDescriptions) {
  MachineDescription MD = makeFig1Machine();
  MatrixDiff Diff = diffMatrices(MD, MD);
  EXPECT_TRUE(Diff.identical());
  std::ostringstream OS;
  printMatrixDiff(OS, Diff);
  EXPECT_NE(OS.str().find("scheduling-equivalent"), std::string::npos);
}

TEST(MatrixDiff, ReductionIsEquivalentDespiteDifferentResources) {
  MachineDescription Flat = expandAlternatives(makeMipsR3000().MD).Flat;
  MachineDescription Reduced = reduceMachine(Flat).Reduced;
  // Entirely different resources, identical constraints.
  MatrixDiff Diff = diffMatrices(Flat, Reduced);
  EXPECT_TRUE(Diff.identical());
}

TEST(MatrixDiff, DetectsAStretchedPipeline) {
  // Revision B holds B's multiply stage one cycle longer: new constraints
  // appear, none disappear.
  MachineDescription A = makeFig1Machine();
  MachineDescription B("fig1-rev2");
  for (ResourceId R = 0; R < A.numResources(); ++R)
    B.addResource(A.resourceName(R));
  B.addOperation("A", A.operation(0).table());
  ReservationTable TB;
  TB.addUsage(1, 0);
  TB.addUsage(2, 1);
  TB.addUsageRange(3, 2, 6); // one cycle longer than the original 2..5
  TB.addUsageRange(4, 6, 7);
  B.addOperation("B", TB);

  MatrixDiff Diff = diffMatrices(A, B);
  EXPECT_TRUE(Diff.Removed.empty());
  ASSERT_FALSE(Diff.Added.empty());
  // The stretched stage forbids latency 4 between two Bs (|2-6| spread).
  EXPECT_TRUE(std::find(Diff.Added.begin(), Diff.Added.end(),
                        (LatencyChange{"B", "B", 4})) != Diff.Added.end());

  // Symmetric direction: diffing the other way swaps added/removed.
  MatrixDiff Back = diffMatrices(B, A);
  EXPECT_EQ(Back.Removed.size(), Diff.Added.size());
  EXPECT_TRUE(Back.Added.empty());
}

TEST(MatrixDiff, ReportsOperationSetChanges) {
  MachineDescription A("a");
  ResourceId R = A.addResource("r");
  ReservationTable T;
  T.addUsage(R, 0);
  A.addOperation("x", T);
  A.addOperation("legacy", T);

  MachineDescription B("b");
  ResourceId S = B.addResource("s");
  ReservationTable T2;
  T2.addUsage(S, 0);
  B.addOperation("x", T2);
  B.addOperation("brandnew", T2);

  MatrixDiff Diff = diffMatrices(A, B);
  EXPECT_EQ(Diff.OnlyInA, (std::vector<std::string>{"legacy"}));
  EXPECT_EQ(Diff.OnlyInB, (std::vector<std::string>{"brandnew"}));
  // The common op x has the same self-constraint in both.
  EXPECT_TRUE(Diff.Added.empty());
  EXPECT_TRUE(Diff.Removed.empty());
  EXPECT_FALSE(Diff.identical());
}

TEST(MatrixDiff, PrintFormat) {
  MachineDescription A("a");
  ResourceId R = A.addResource("r");
  ReservationTable T1;
  T1.addUsage(R, 0);
  A.addOperation("x", T1);

  MachineDescription B("b");
  ResourceId S = B.addResource("s");
  ReservationTable T2;
  T2.addUsage(S, 0);
  T2.addUsage(S, 2);
  B.addOperation("x", T2);

  std::ostringstream OS;
  printMatrixDiff(OS, diffMatrices(A, B));
  std::string Out = OS.str();
  EXPECT_NE(Out.find("+ x forbidden 2 cycles after x"), std::string::npos);
  EXPECT_NE(Out.find("1 constraint(s) added, 0 removed"),
            std::string::npos);
}
